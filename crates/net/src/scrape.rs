//! Read-only Observatory scrape listener.
//!
//! The Observatory's exposition (see `odp_telemetry::export`) is served two
//! ways: as `TelemetryServant` interrogations for ODP clients, and — here —
//! over a deliberately tiny HTTP/1.0 endpoint for everything that is *not*
//! an ODP client: `curl`, Prometheus, and `odp-top`. The listener is
//! strictly read-only (`GET` only, no op mutates anything) so exposing it
//! is never a control-plane risk; mutation stays behind the servant, where
//! `odp-security` can guard it.
//!
//! No HTTP library: the protocol surface is one request line in, one
//! `HTTP/1.0` response out, connection closed. Routes:
//!
//! | path            | body                                          |
//! |-----------------|-----------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (with exemplars)   |
//! | `/metrics.json` | the same registry as a JSON document          |
//! | `/recorder`     | flight-recorder tail (newest entries last)    |
//! | `/recorder/dump`| last freeze dump, if a trigger has fired      |
//! | `/trace/<id>`   | rendered span tree for one trace id           |

use odp_telemetry::{hub, render_json, render_prometheus, ExpositionData};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Longest request head we will buffer before answering `400`: the routes
/// above fit in tens of bytes, so anything larger is not a scraper.
const MAX_REQUEST_HEAD: usize = 4096;

/// Per-connection socket timeout: a stalled scraper costs at most this
/// long, never a wedged listener thread.
const CLIENT_TIMEOUT: Duration = Duration::from_millis(500);

/// Entries of flight-recorder tail served by `/recorder`.
const RECORDER_TAIL: usize = 256;

/// A bound read-only scrape endpoint serving the process-global telemetry
/// hub. Dropping the server (or calling [`ScrapeServer::shutdown`]) stops
/// the accept loop.
pub struct ScrapeServer {
    addr: SocketAddr,
    alive: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
}

impl ScrapeServer {
    /// Binds the listener on `addr` (use `127.0.0.1:0` for an ephemeral
    /// port) and starts serving in a background thread.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the bind or thread spawn fails.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let alive = Arc::new(AtomicBool::new(true));
        let served = Arc::new(AtomicU64::new(0));
        let loop_alive = Arc::clone(&alive);
        let loop_served = Arc::clone(&served);
        std::thread::Builder::new()
            .name(format!("odp-scrape-{}", local.port()))
            .spawn(move || accept_loop(&listener, &loop_alive, &loop_served))?;
        Ok(Self {
            addr: local,
            alive,
            served,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of requests answered so far (any status).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops the accept loop. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .field("served", &self.served())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, alive: &Arc<AtomicBool>, served: &Arc<AtomicU64>) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: responses are rendered from in-memory
                // atomics, so a request is microseconds of work and the
                // socket timeout bounds a stalled client.
                serve_one(stream);
                served.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn serve_one(mut stream: TcpStream) {
    // odp-lint: allow(l6, reason = "timeout tuning is best-effort; OS defaults apply")
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    // odp-lint: allow(l6, reason = "timeout tuning is best-effort; OS defaults apply")
    let _ = stream.set_write_timeout(Some(CLIENT_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        respond(&mut stream, 400, "text/plain", "bad request\n");
        drain(&mut stream);
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            respond(&mut stream, 400, "text/plain", "bad request\n");
            drain(&mut stream);
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "read-only endpoint\n");
        drain(&mut stream);
        return;
    }
    route(&mut stream, path);
    drain(&mut stream);
}

/// Signals end-of-response and consumes any unread request bytes, so
/// closing the socket sends FIN rather than RST (a close with pending
/// receive data resets the connection, truncating the response on the
/// client side). Bounded: the socket timeout caps each read and 64 KiB
/// caps the total, so a drip-feeding client cannot pin the thread.
fn drain(stream: &mut TcpStream) {
    // odp-lint: allow(l6, reason = "half-close after the response is written is best-effort")
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn route(stream: &mut TcpStream, path: &str) {
    match path {
        "/metrics" => {
            let body = render_prometheus(&ExpositionData::gather());
            respond(stream, 200, "text/plain; version=0.0.4", &body);
        }
        "/metrics.json" => {
            let body = render_json(&ExpositionData::gather());
            respond(stream, 200, "application/json", &body);
        }
        "/recorder" => {
            let mut body = hub().recorder().render(RECORDER_TAIL).join("\n");
            body.push('\n');
            respond(stream, 200, "text/plain", &body);
        }
        "/recorder/dump" => match hub().recorder().last_dump() {
            Some(dump) => {
                let mut body = format!("# frozen: {} @{}ns\n", dump.reason, dump.at_ns);
                for line in &dump.lines {
                    body.push_str(line);
                    body.push('\n');
                }
                respond(stream, 200, "text/plain", &body);
            }
            None => respond(stream, 404, "text/plain", "no freeze dump\n"),
        },
        p => {
            if let Some(id) = p
                .strip_prefix("/trace/")
                .and_then(|rest| rest.parse::<u64>().ok())
            {
                let mut body = hub().render_trace(id).join("\n");
                body.push('\n');
                respond(stream, 200, "text/plain", &body);
            } else {
                respond(stream, 404, "text/plain", "unknown path\n");
            }
        }
    }
}

/// Reads the whole request head (through the blank line) and returns the
/// request line, bounded by [`MAX_REQUEST_HEAD`]. Consuming the full head
/// matters: closing the socket with unread request bytes pending makes
/// the kernel answer with RST, which clients see as a reset mid-response.
/// Returns `None` on timeout, oversize, or non-UTF-8.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while head.len() < MAX_REQUEST_HEAD {
        // Blank line = end of head (tolerate bare-LF clients).
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            // odp-lint: allow(l1, reason = "read returns n <= chunk.len() by contract")
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    if head.len() >= MAX_REQUEST_HEAD {
        return None;
    }
    let head = String::from_utf8(head).ok()?;
    let line = head.lines().next()?.trim();
    if line.is_empty() {
        return None;
    }
    Some(line.to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        405 => "Method Not Allowed",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // odp-lint: allow(l6, reason = "scrape client may vanish mid-response; no caller to propagate to")
    let _ = stream.write_all(head.as_bytes());
    // odp-lint: allow(l6, reason = "scrape client may vanish mid-response; no caller to propagate to")
    let _ = stream.write_all(body.as_bytes());
    // odp-lint: allow(l6, reason = "scrape client may vanish mid-response; no caller to propagate to")
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn scrape_endpoint_serves_text_json_and_recorder() {
        let server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("# TYPE odp_layer_calls_total counter"),
            "{body}"
        );

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(body.trim_end().starts_with('{') && body.trim_end().ends_with('}'));

        let (status, _) = get(addr, "/recorder");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/trace/12345");
        assert_eq!(status, 200);

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        // `served` ticks after the connection is drained, so the last
        // client can see its full response before the counter does —
        // poll briefly instead of asserting a racy instant.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.served() < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.served() >= 5);
        server.shutdown();
    }

    #[test]
    fn scrape_endpoint_is_read_only_and_bounds_requests() {
        let server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");

        // An oversized request line is rejected, not buffered without bound.
        let mut stream = TcpStream::connect(addr).unwrap();
        let long = vec![b'a'; MAX_REQUEST_HEAD + 16];
        stream.write_all(&long).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 400"), "{raw}");
    }
}
