//! A real TCP realization of the [`Transport`] contract.
//!
//! The engineering model requires that "the appropriate communications
//! capability \[be\] inserted transparently in the path between client and
//! server" (§4.1): nothing above the transport may know whether messages
//! cross a simulated link or a socket. `TcpNetwork` proves the point — it is
//! interchangeable with [`crate::SimNet`] in every test and example.
//!
//! Framing: each message is `u32` big-endian payload length, `u64`
//! big-endian sender node id, then the payload. Connections are established
//! lazily, cached per destination, and re-established after failure
//! (datagram semantics: a lost connection loses in-flight messages, which
//! the REX layer's retransmission recovers — exactly the paper's split of
//! responsibilities).
//!
//! Writes are *coalesced*: each cached connection owns a dedicated writer
//! thread fed by a bounded queue of pooled, pre-framed buffers. Senders
//! never block on the socket (only on a full queue — backpressure), and
//! the writer drains whatever has accumulated into one batched
//! write+flush, so n concurrent callers cost ~1 syscall set instead of n
//! serialized ones. Per-destination FIFO order is preserved: one queue,
//! one writer.

use crate::transport::{Endpoint, Envelope, NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use odp_telemetry::wire_stats;
use odp_types::NodeId;
use odp_wire::PooledBuf;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted frame size (16 MiB): a hostile peer must not be able to
/// make a capsule allocate unboundedly.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frames a connection's writer queue holds before `send` blocks on it
/// (bounded queue = backpressure instead of unbounded memory).
pub const WRITER_QUEUE_DEPTH: usize = 256;

/// Upper bound on frames coalesced into a single write+flush.
const MAX_WRITE_BATCH: usize = 32;

fn io_err(e: &std::io::Error) -> NetError {
    NetError::Io(e.to_string())
}

/// Write failures that mean the *cached* connection died but the peer may
/// have restarted since (connection-reset family): retrying once on a fresh
/// connection is safe. Anything else (local resource exhaustion, invalid
/// data, …) is surfaced to the caller untouched.
fn is_reset(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected
    )
}

/// Reads one frame. Returns `None` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<(NodeId, Bytes)>> {
    let mut header = [0u8; 12];
    let mut read = 0;
    while read < header.len() {
        // odp-lint: allow(l1, reason = "read < header.len() on the line above bounds the slice")
        match stream.read(&mut header[read..]) {
            Ok(0) if read == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            Ok(n) => read += n,
            Err(e) => return Err(e),
        }
    }
    // Fixed-size copies: infallible by construction, so a framing bug can
    // never panic the reader thread.
    let mut len_bytes = [0u8; 4];
    // odp-lint: allow(l1, reason = "fixed 12-byte header; [..4] is in bounds by construction")
    len_bytes.copy_from_slice(&header[..4]);
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut from_bytes = [0u8; 8];
    // odp-lint: allow(l1, reason = "fixed 12-byte header; [4..] is exactly 8 bytes by construction")
    from_bytes.copy_from_slice(&header[4..]);
    let from = NodeId(u64::from_be_bytes(from_bytes));
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some((from, Bytes::from(payload))))
}

struct NodeState {
    addr: SocketAddr,
    alive: Arc<AtomicBool>,
}

/// A cached outbound connection: the bounded frame queue feeding its
/// writer thread, plus the shared stream slot the writer writes through
/// (shared so tests and the writer's reconnect can reach the live socket).
#[derive(Clone)]
struct ConnHandle {
    tx: Sender<PooledBuf>,
    // Read outside the writer thread only by tests (fault injection).
    #[cfg_attr(not(test), allow(dead_code))]
    stream: Arc<Mutex<TcpStream>>,
}

/// TCP-backed transport. All endpoints bind loopback ports; a shared
/// in-process directory maps node ids to socket addresses (standing in for
/// the static configuration a 1991 deployment would have used).
#[derive(Clone, Default)]
pub struct TcpNetwork {
    directory: Arc<Mutex<HashMap<NodeId, NodeState>>>,
    connections: Arc<Mutex<HashMap<(NodeId, NodeId), ConnHandle>>>,
}

impl TcpNetwork {
    /// Creates an empty TCP network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The socket address a node is listening on, if registered.
    #[must_use]
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.directory.lock().get(&node).map(|s| s.addr)
    }

    fn connect(&self, from: NodeId, to: NodeId) -> Result<ConnHandle, NetError> {
        if let Some(conn) = self.connections.lock().get(&(from, to)) {
            return Ok(conn.clone());
        }
        let addr = self
            .directory
            .lock()
            .get(&to)
            .map(|s| s.addr)
            .ok_or(NetError::UnknownNode(to))?;
        let stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                // The peer's address is still in the directory but nothing
                // is listening: its process is down.
                NetError::Unreachable(to)
            } else {
                io_err(&e)
            }
        })?;
        stream.set_nodelay(true).map_err(|e| io_err(&e))?;
        let stream = Arc::new(Mutex::new(stream));
        let (tx, rx) = bounded(WRITER_QUEUE_DEPTH);
        let handle = ConnHandle {
            tx,
            stream: Arc::clone(&stream),
        };
        let directory = Arc::clone(&self.directory);
        std::thread::Builder::new()
            .name(format!("tcp-write-{from}-{to}"))
            .spawn(move || write_loop(&rx, &stream, &directory, to))
            .map_err(|e| NetError::Io(format!("spawn writer thread: {e}")))?;
        self.connections.lock().insert((from, to), handle.clone());
        Ok(handle)
    }
}

/// Drains the writer queue: blocks for the first frame, opportunistically
/// grabs whatever else has queued up, and flushes the batch in one go.
/// Exits when every sender is gone (connection evicted / deregistered) or
/// the connection dies beyond the one-reconnect recovery.
fn write_loop(
    rx: &Receiver<PooledBuf>,
    stream: &Arc<Mutex<TcpStream>>,
    directory: &Arc<Mutex<HashMap<NodeId, NodeState>>>,
    to: NodeId,
) {
    let mut batch: Vec<PooledBuf> = Vec::with_capacity(MAX_WRITE_BATCH);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < MAX_WRITE_BATCH {
            match rx.try_recv() {
                Ok(frame) => batch.push(frame),
                Err(_) => break,
            }
        }
        if !write_batch(stream, &batch, directory, to) {
            // Connection gone for good: queued frames are lost datagrams
            // (REX retransmission recovers them); the dropped receiver
            // tells the next `send` to rebuild the connection.
            return;
        }
        wire_stats().tx_batch();
        batch.clear(); // drops the frames, recycling their buffers
    }
}

/// Writes every frame in `batch` with a single flush. On a
/// connection-reset family error the peer may have restarted: reconnect
/// once into the shared stream slot and rewrite the whole batch (frames
/// are datagrams and REX deduplicates, so a replayed prefix is harmless).
/// Returns `false` when the connection is dead beyond that.
fn write_batch(
    stream: &Arc<Mutex<TcpStream>>,
    batch: &[PooledBuf],
    directory: &Arc<Mutex<HashMap<NodeId, NodeState>>>,
    to: NodeId,
) -> bool {
    let mut guard = stream.lock();
    match write_all_frames(&mut guard, batch) {
        Ok(()) => true,
        Err(e) if is_reset(e.kind()) => {
            // odp-lint: allow(l6, reason = "socket is already dead; shutdown is a courtesy to the peer")
            let _ = guard.shutdown(std::net::Shutdown::Both);
            let Some(addr) = directory.lock().get(&to).map(|s| s.addr) else {
                return false;
            };
            let Ok(fresh) = TcpStream::connect(addr) else {
                return false;
            };
            // odp-lint: allow(l6, reason = "nodelay is a latency optimization; the reconnect works without it")
            let _ = fresh.set_nodelay(true);
            *guard = fresh;
            write_all_frames(&mut guard, batch).is_ok()
        }
        Err(_) => false,
    }
}

fn write_all_frames(stream: &mut TcpStream, batch: &[PooledBuf]) -> std::io::Result<()> {
    for frame in batch {
        stream.write_all(frame)?;
    }
    stream.flush()
}

impl Transport for TcpNetwork {
    fn register(&self, node: NodeId) -> Result<Endpoint, NetError> {
        let mut dir = self.directory.lock();
        if dir.contains_key(&node) {
            return Err(NetError::AlreadyRegistered(node));
        }
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(&e))?;
        let addr = listener.local_addr().map_err(|e| io_err(&e))?;
        listener.set_nonblocking(true).map_err(|e| io_err(&e))?;
        let alive = Arc::new(AtomicBool::new(true));
        // odp-lint: allow(l7, reason = "endpoint inbox; occupancy is bounded by peers' REX in-flight windows and deadline expiry")
        let (tx, rx) = unbounded();
        dir.insert(
            node,
            NodeState {
                addr,
                alive: Arc::clone(&alive),
            },
        );
        drop(dir);
        let accept_alive = Arc::clone(&alive);
        if let Err(e) = std::thread::Builder::new()
            .name(format!("tcp-accept-{node}"))
            .spawn(move || accept_loop(&listener, node, &tx, &accept_alive))
        {
            // Without an acceptor the registration is useless: roll it back
            // and surface the failure instead of panicking.
            self.directory.lock().remove(&node);
            return Err(NetError::Io(format!("spawn accept thread: {e}")));
        }
        Ok(Endpoint::new(node, rx))
    }

    fn deregister(&self, node: NodeId) {
        if let Some(state) = self.directory.lock().remove(&node) {
            state.alive.store(false, Ordering::SeqCst);
        }
        self.connections
            .lock()
            .retain(|(from, to), _| *from != node && *to != node);
    }

    fn send(&self, env: Envelope) -> Result<(), NetError> {
        self.send_frame(env.from, env.to, &env.payload)
    }

    fn send_frame(&self, from: NodeId, to: NodeId, payload: &[u8]) -> Result<(), NetError> {
        let conn = self.connect(from, to)?;
        let mut frame = PooledBuf::acquire(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&from.raw().to_be_bytes());
        frame.extend_from_slice(payload);
        wire_stats().tx_frame();
        if let Err(crossbeam::channel::SendError(frame)) = conn.tx.send(frame) {
            // The writer exited (its connection died): evict the stale
            // handle and rebuild once. If the peer's process is down,
            // `connect` surfaces `Unreachable` — blind retries would only
            // burn the caller's budget.
            self.connections.lock().remove(&(from, to));
            let conn = self.connect(from, to)?;
            conn.tx
                .send(frame)
                .map_err(|_| NetError::Io("writer unavailable after reconnect".to_owned()))?;
        }
        Ok(())
    }

    fn is_registered(&self, node: NodeId) -> bool {
        self.directory.lock().contains_key(&node)
    }
}

fn accept_loop(
    listener: &TcpListener,
    node: NodeId,
    tx: &Sender<Envelope>,
    alive: &Arc<AtomicBool>,
) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = tx.clone();
                let reader_alive = Arc::clone(alive);
                if std::thread::Builder::new()
                    .name(format!("tcp-read-{node}"))
                    .spawn(move || read_loop(stream, node, &tx, &reader_alive))
                    .is_err()
                {
                    // Thread exhaustion: drop the connection (the sender
                    // sees a reset and reconnects) rather than panic.
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn read_loop(mut stream: TcpStream, node: NodeId, tx: &Sender<Envelope>, alive: &Arc<AtomicBool>) {
    // Block on reads, but wake periodically so a deregistered node's reader
    // threads drain away.
    // odp-lint: allow(l6, reason = "without the timeout the reader still exits via connection teardown, just later")
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    while alive.load(Ordering::SeqCst) {
        match read_frame(&mut stream) {
            Ok(Some((from, payload))) => {
                if tx
                    .send(Envelope {
                        from,
                        to: node,
                        payload,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => {
                // The connection dies (REX retransmission recovers the
                // messages), but the corruption itself must be observable.
                odp_telemetry::hub().event(
                    "tcp.frame_error",
                    node.raw(),
                    0,
                    format!("reader closed: {e}"),
                );
                return;
            }
        }
    }
}

impl std::fmt::Debug for TcpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNetwork")
            .field("nodes", &self.directory.lock().len())
            .field("connections", &self.connections.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_loopback() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"over tcp"),
        ))
        .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"over tcp"));
        assert_eq!(got.from, NodeId(1));
    }

    #[test]
    fn many_messages_preserve_per_sender_order() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        for i in 0..100u32 {
            net.send(Envelope::new(
                NodeId(1),
                NodeId(2),
                Bytes::copy_from_slice(&i.to_be_bytes()),
            ))
            .unwrap();
        }
        for i in 0..100u32 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.payload, Bytes::copy_from_slice(&i.to_be_bytes()));
        }
    }

    #[test]
    fn unknown_node_and_duplicate_registration() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        assert!(matches!(
            net.send(Envelope::new(NodeId(1), NodeId(9), Bytes::new())),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            net.register(NodeId(1)),
            Err(NetError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn bidirectional_traffic() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"ping"),
        ))
        .unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap().payload,
            Bytes::from_static(b"ping")
        );
        net.send(Envelope::new(
            NodeId(2),
            NodeId(1),
            Bytes::from_static(b"pong"),
        ))
        .unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap().payload,
            Bytes::from_static(b"pong")
        );
    }

    #[test]
    fn deregistered_node_unreachable() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let _b = net.register(NodeId(2)).unwrap();
        net.deregister(NodeId(2));
        assert!(!net.is_registered(NodeId(2)));
        assert!(net
            .send(Envelope::new(NodeId(1), NodeId(2), Bytes::new()))
            .is_err());
    }

    #[test]
    fn refused_connection_surfaces_unreachable() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        // A port that was just bound and released: connecting to it is
        // refused (nothing listens), modelling a peer whose process died.
        let dead = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        net.directory.lock().insert(
            NodeId(9),
            NodeState {
                addr: dead,
                alive: Arc::new(AtomicBool::new(true)),
            },
        );
        assert_eq!(
            net.send(Envelope::new(NodeId(1), NodeId(9), Bytes::new()))
                .unwrap_err(),
            NetError::Unreachable(NodeId(9))
        );
    }

    #[test]
    fn send_reconnects_after_reset() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"warm"),
        ))
        .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        // Kill the cached stream under the cache's feet: the next write
        // fails with the connection-reset family and must transparently
        // retry on a fresh connection.
        let conn = net
            .connections
            .lock()
            .get(&(NodeId(1), NodeId(2)))
            .unwrap()
            .clone();
        conn.stream
            .lock()
            .shutdown(std::net::Shutdown::Both)
            .unwrap();
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"again"),
        ))
        .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"again"));
    }

    #[test]
    fn writer_coalesces_queued_frames() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        let before = wire_stats().snapshot();
        for i in 0..64u32 {
            net.send_frame(NodeId(1), NodeId(2), &i.to_be_bytes())
                .unwrap();
        }
        for i in 0..64u32 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.payload, Bytes::copy_from_slice(&i.to_be_bytes()));
        }
        let d = wire_stats().snapshot().since(&before);
        assert!(d.tx_frames >= 64, "frames counted: {}", d.tx_frames);
        // Other tests run concurrently against the same global counters,
        // so only sanity-check the invariant: batches never exceed frames.
        assert!(d.tx_batches <= d.tx_frames);
    }

    #[test]
    fn oversized_frame_rejected_by_reader() {
        // Hand-craft a frame claiming MAX_FRAME+1 bytes; reader must drop
        // the connection, not allocate.
        let net = TcpNetwork::new();
        let b = net.register(NodeId(2)).unwrap();
        let addr = net.addr_of(NodeId(2)).unwrap();
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = [0u8; 12];
        header[..4].copy_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        s.write_all(&header).unwrap();
        s.flush().unwrap();
        assert!(b.recv_timeout(Duration::from_millis(200)).is_err());
    }
}
