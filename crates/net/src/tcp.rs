//! A real TCP realization of the [`Transport`] contract.
//!
//! The engineering model requires that "the appropriate communications
//! capability \[be\] inserted transparently in the path between client and
//! server" (§4.1): nothing above the transport may know whether messages
//! cross a simulated link or a socket. `TcpNetwork` proves the point — it is
//! interchangeable with [`crate::SimNet`] in every test and example.
//!
//! Framing: each message is `u32` big-endian payload length, `u64`
//! big-endian sender node id, then the payload. Connections are established
//! lazily, cached per destination, and re-established after failure
//! (datagram semantics: a lost connection loses in-flight messages, which
//! the REX layer's retransmission recovers — exactly the paper's split of
//! responsibilities).

use crate::transport::{Endpoint, Envelope, NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use odp_types::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted frame size (16 MiB): a hostile peer must not be able to
/// make a capsule allocate unboundedly.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

fn io_err(e: &std::io::Error) -> NetError {
    NetError::Io(e.to_string())
}

/// Write failures that mean the *cached* connection died but the peer may
/// have restarted since (connection-reset family): retrying once on a fresh
/// connection is safe. Anything else (local resource exhaustion, invalid
/// data, …) is surfaced to the caller untouched.
fn is_reset(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected
    )
}

/// Writes one frame to a stream.
fn write_frame(stream: &mut TcpStream, from: NodeId, payload: &[u8]) -> std::io::Result<()> {
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[4..].copy_from_slice(&from.raw().to_be_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one frame. Returns `None` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<(NodeId, Bytes)>> {
    let mut header = [0u8; 12];
    let mut read = 0;
    while read < header.len() {
        match stream.read(&mut header[read..]) {
            Ok(0) if read == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-header",
                ))
            }
            Ok(n) => read += n,
            Err(e) => return Err(e),
        }
    }
    // Fixed-size copies: infallible by construction, so a framing bug can
    // never panic the reader thread.
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&header[..4]);
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut from_bytes = [0u8; 8];
    from_bytes.copy_from_slice(&header[4..]);
    let from = NodeId(u64::from_be_bytes(from_bytes));
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some((from, Bytes::from(payload))))
}

struct NodeState {
    addr: SocketAddr,
    alive: Arc<AtomicBool>,
}

/// TCP-backed transport. All endpoints bind loopback ports; a shared
/// in-process directory maps node ids to socket addresses (standing in for
/// the static configuration a 1991 deployment would have used).
#[derive(Clone, Default)]
pub struct TcpNetwork {
    directory: Arc<Mutex<HashMap<NodeId, NodeState>>>,
    connections: Arc<Mutex<HashMap<(NodeId, NodeId), Arc<Mutex<TcpStream>>>>>,
}

impl TcpNetwork {
    /// Creates an empty TCP network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The socket address a node is listening on, if registered.
    #[must_use]
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.directory.lock().get(&node).map(|s| s.addr)
    }

    fn connect(&self, from: NodeId, to: NodeId) -> Result<Arc<Mutex<TcpStream>>, NetError> {
        if let Some(conn) = self.connections.lock().get(&(from, to)) {
            return Ok(Arc::clone(conn));
        }
        let addr = self
            .directory
            .lock()
            .get(&to)
            .map(|s| s.addr)
            .ok_or(NetError::UnknownNode(to))?;
        let stream = TcpStream::connect(addr).map_err(|e| {
            if e.kind() == std::io::ErrorKind::ConnectionRefused {
                // The peer's address is still in the directory but nothing
                // is listening: its process is down.
                NetError::Unreachable(to)
            } else {
                io_err(&e)
            }
        })?;
        stream.set_nodelay(true).map_err(|e| io_err(&e))?;
        let conn = Arc::new(Mutex::new(stream));
        self.connections
            .lock()
            .insert((from, to), Arc::clone(&conn));
        Ok(conn)
    }
}

impl Transport for TcpNetwork {
    fn register(&self, node: NodeId) -> Result<Endpoint, NetError> {
        let mut dir = self.directory.lock();
        if dir.contains_key(&node) {
            return Err(NetError::AlreadyRegistered(node));
        }
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err(&e))?;
        let addr = listener.local_addr().map_err(|e| io_err(&e))?;
        listener.set_nonblocking(true).map_err(|e| io_err(&e))?;
        let alive = Arc::new(AtomicBool::new(true));
        let (tx, rx) = unbounded();
        dir.insert(
            node,
            NodeState {
                addr,
                alive: Arc::clone(&alive),
            },
        );
        drop(dir);
        let accept_alive = Arc::clone(&alive);
        if let Err(e) = std::thread::Builder::new()
            .name(format!("tcp-accept-{node}"))
            .spawn(move || accept_loop(&listener, node, &tx, &accept_alive))
        {
            // Without an acceptor the registration is useless: roll it back
            // and surface the failure instead of panicking.
            self.directory.lock().remove(&node);
            return Err(NetError::Io(format!("spawn accept thread: {e}")));
        }
        Ok(Endpoint::new(node, rx))
    }

    fn deregister(&self, node: NodeId) {
        if let Some(state) = self.directory.lock().remove(&node) {
            state.alive.store(false, Ordering::SeqCst);
        }
        self.connections
            .lock()
            .retain(|(from, to), _| *from != node && *to != node);
    }

    fn send(&self, env: Envelope) -> Result<(), NetError> {
        let conn = self.connect(env.from, env.to)?;
        let mut stream = conn.lock();
        if let Err(first_err) = write_frame(&mut stream, env.from, &env.payload) {
            // Close the stale stream before dropping it from the cache so
            // its file descriptor and the peer's reader drain immediately.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            drop(stream);
            self.connections.lock().remove(&(env.from, env.to));
            if !is_reset(first_err.kind()) {
                return Err(io_err(&first_err));
            }
            // Connection-reset family: the peer may have restarted, so one
            // fresh connection attempt is warranted. If that attempt is
            // *refused*, `connect` surfaces `Unreachable` — the peer is
            // down, and blind retries would only burn the caller's budget.
            let conn = self.connect(env.from, env.to)?;
            let mut stream = conn.lock();
            write_frame(&mut stream, env.from, &env.payload).map_err(|e| {
                NetError::Io(format!("{first_err}; retry failed: {e}"))
            })?;
        }
        Ok(())
    }

    fn is_registered(&self, node: NodeId) -> bool {
        self.directory.lock().contains_key(&node)
    }
}

fn accept_loop(
    listener: &TcpListener,
    node: NodeId,
    tx: &Sender<Envelope>,
    alive: &Arc<AtomicBool>,
) {
    while alive.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = tx.clone();
                let reader_alive = Arc::clone(alive);
                if std::thread::Builder::new()
                    .name(format!("tcp-read-{node}"))
                    .spawn(move || read_loop(stream, node, &tx, &reader_alive))
                    .is_err()
                {
                    // Thread exhaustion: drop the connection (the sender
                    // sees a reset and reconnects) rather than panic.
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn read_loop(mut stream: TcpStream, node: NodeId, tx: &Sender<Envelope>, alive: &Arc<AtomicBool>) {
    // Block on reads, but wake periodically so a deregistered node's reader
    // threads drain away.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    while alive.load(Ordering::SeqCst) {
        match read_frame(&mut stream) {
            Ok(Some((from, payload))) => {
                if tx
                    .send(Envelope {
                        from,
                        to: node,
                        payload,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => {
                // The connection dies (REX retransmission recovers the
                // messages), but the corruption itself must be observable.
                odp_telemetry::hub().event(
                    "tcp.frame_error",
                    node.raw(),
                    0,
                    format!("reader closed: {e}"),
                );
                return;
            }
        }
    }
}

impl std::fmt::Debug for TcpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNetwork")
            .field("nodes", &self.directory.lock().len())
            .field("connections", &self.connections.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_loopback() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(NodeId(1), NodeId(2), Bytes::from_static(b"over tcp")))
            .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"over tcp"));
        assert_eq!(got.from, NodeId(1));
    }

    #[test]
    fn many_messages_preserve_per_sender_order() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        for i in 0..100u32 {
            net.send(Envelope::new(
                NodeId(1),
                NodeId(2),
                Bytes::copy_from_slice(&i.to_be_bytes()),
            ))
            .unwrap();
        }
        for i in 0..100u32 {
            let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.payload, Bytes::copy_from_slice(&i.to_be_bytes()));
        }
    }

    #[test]
    fn unknown_node_and_duplicate_registration() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        assert!(matches!(
            net.send(Envelope::new(NodeId(1), NodeId(9), Bytes::new())),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            net.register(NodeId(1)),
            Err(NetError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn bidirectional_traffic() {
        let net = TcpNetwork::new();
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(NodeId(1), NodeId(2), Bytes::from_static(b"ping")))
            .unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, Bytes::from_static(b"ping"));
        net.send(Envelope::new(NodeId(2), NodeId(1), Bytes::from_static(b"pong")))
            .unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().payload, Bytes::from_static(b"pong"));
    }

    #[test]
    fn deregistered_node_unreachable() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let _b = net.register(NodeId(2)).unwrap();
        net.deregister(NodeId(2));
        assert!(!net.is_registered(NodeId(2)));
        assert!(net
            .send(Envelope::new(NodeId(1), NodeId(2), Bytes::new()))
            .is_err());
    }

    #[test]
    fn refused_connection_surfaces_unreachable() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        // A port that was just bound and released: connecting to it is
        // refused (nothing listens), modelling a peer whose process died.
        let dead = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        net.directory.lock().insert(
            NodeId(9),
            NodeState {
                addr: dead,
                alive: Arc::new(AtomicBool::new(true)),
            },
        );
        assert_eq!(
            net.send(Envelope::new(NodeId(1), NodeId(9), Bytes::new()))
                .unwrap_err(),
            NetError::Unreachable(NodeId(9))
        );
    }

    #[test]
    fn send_reconnects_after_reset() {
        let net = TcpNetwork::new();
        let _a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        net.send(Envelope::new(NodeId(1), NodeId(2), Bytes::from_static(b"warm")))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).unwrap();
        // Kill the cached stream under the cache's feet: the next write
        // fails with the connection-reset family and must transparently
        // retry on a fresh connection.
        let conn = Arc::clone(
            net.connections
                .lock()
                .get(&(NodeId(1), NodeId(2)))
                .unwrap(),
        );
        conn.lock().shutdown(std::net::Shutdown::Both).unwrap();
        net.send(Envelope::new(NodeId(1), NodeId(2), Bytes::from_static(b"again")))
            .unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, Bytes::from_static(b"again"));
    }

    #[test]
    fn oversized_frame_rejected_by_reader() {
        // Hand-craft a frame claiming MAX_FRAME+1 bytes; reader must drop
        // the connection, not allocate.
        let net = TcpNetwork::new();
        let b = net.register(NodeId(2)).unwrap();
        let addr = net.addr_of(NodeId(2)).unwrap();
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = [0u8; 12];
        header[..4].copy_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        s.write_all(&header).unwrap();
        s.flush().unwrap();
        assert!(b.recv_timeout(Duration::from_millis(200)).is_err());
    }
}
