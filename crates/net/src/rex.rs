//! REX — the Remote EXecution protocol.
//!
//! §4.1 of the paper selects "the exchange of request and response messages"
//! as the one interaction style, and §5.1 requires two invocation kinds:
//! *interrogation* (request/reply) and *announcement* (request-only). REX is
//! the engineering realization on top of the unreliable [`Transport`]:
//!
//! * **Retransmission under a deadline**: each call carries a [`CallQos`]
//!   ("communications quality of service constraints must be specified
//!   (either explicitly or by default)"). The request is retransmitted every
//!   `retry_interval` until a reply arrives or `deadline` expires.
//! * **At-most-once execution**: servers keep a bounded reply cache keyed by
//!   `(caller, call id)`. A retransmitted request whose execution completed
//!   is answered from the cache; one still executing is dropped (its reply
//!   is on the way). The handler therefore runs **at most once per call id**
//!   even under heavy retransmission — the property every transparency
//!   above (transactions especially) depends on.
//! * **Announcements** are a single datagram: "in the case of announcement
//!   \[failure reporting\] is not possible" (§5.1).
//!
//! The reply body is opaque: application-level terminations (including
//! failure terminations) are encoded by `odp-core` *inside* the body, so a
//! REX-level error always means an engineering failure (unreachable,
//! timeout), never an application outcome.

use crate::transport::{Endpoint, NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use odp_telemetry::TraceContext;
use odp_types::{InterfaceId, NodeId};
use odp_wire::overload::{get_overload, put_overload, OVERLOAD_WIRE_LEN};
use odp_wire::trace::get_trace;
use odp_wire::{CallPriority, PooledBuf};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-call quality of service constraints (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallQos {
    /// Total time budget for the interrogation.
    pub deadline: Duration,
    /// Gap between retransmissions of an unanswered request.
    pub retry_interval: Duration,
    /// Scheduling class stamped into the request envelope; the server's
    /// admission control queues (and sheds) by it under overload.
    pub priority: CallPriority,
}

impl Default for CallQos {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            retry_interval: Duration::from_millis(100),
            priority: CallPriority::Normal,
        }
    }
}

impl CallQos {
    /// QoS with the given deadline and a retry interval of a quarter of it
    /// (at least 1 ms).
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline,
            retry_interval: (deadline / 4).max(Duration::from_millis(1)),
            priority: CallPriority::Normal,
        }
    }

    /// This QoS with the given scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: CallPriority) -> Self {
        self.priority = priority;
        self
    }

    /// This QoS with its deadline clamped to `remaining` — deadline
    /// propagation: a layer that knows the caller's *end-to-end* budget
    /// shrinks each attempt's deadline to what is actually left, so stacked
    /// retries can never exceed the caller's total deadline.
    #[must_use]
    pub fn clamp_to(self, remaining: Duration) -> Self {
        Self {
            deadline: self.deadline.min(remaining),
            retry_interval: self.retry_interval,
            priority: self.priority,
        }
    }
}

/// Errors surfaced by REX calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RexError {
    /// No reply within the QoS deadline (server slow, dead, or partitioned
    /// — indistinguishable by design, §4.1).
    Timeout,
    /// The destination is not registered on the transport (fast failure).
    Unreachable(NodeId),
    /// Underlying transport failure.
    Transport(NetError),
    /// The endpoint has been shut down.
    Closed,
    /// A peer sent bytes that do not parse as a REX message.
    Malformed,
}

impl fmt::Display for RexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RexError::Timeout => write!(f, "call deadline exceeded"),
            RexError::Unreachable(n) => write!(f, "node {n} unreachable"),
            RexError::Transport(e) => write!(f, "transport error: {e}"),
            RexError::Closed => write!(f, "endpoint closed"),
            RexError::Malformed => write!(f, "malformed REX message"),
        }
    }
}

impl std::error::Error for RexError {}

/// An incoming request as seen by the server handler.
#[derive(Debug, Clone)]
pub struct RexRequest {
    /// Calling node.
    pub from: NodeId,
    /// Target interface.
    pub iface: InterfaceId,
    /// Operation name.
    pub op: String,
    /// Marshalled argument payload.
    pub body: Bytes,
    /// True for announcements (no reply will be sent).
    pub announcement: bool,
    /// Trace context carried in the request envelope
    /// ([`TraceContext::NONE`] when the caller was untraced).
    pub trace: TraceContext,
    /// Scheduling class carried in the request envelope; admission
    /// control queues (and sheds) by it under overload.
    pub priority: CallPriority,
    /// Absolute deadline reconstructed from the envelope's relative
    /// budget, anchored at the frame's *arrival* instant so queueing
    /// delay inside this endpoint counts against it. `None` when the
    /// caller sent no budget (announcements).
    pub deadline: Option<Instant>,
}

/// Server-side request handler: returns the marshalled reply body in a
/// pooled buffer (the REX worker frames it, sends it, and parks the body
/// in the reply cache; eviction recycles the buffer).
pub type Handler = Arc<dyn Fn(RexRequest) -> PooledBuf + Send + Sync>;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;
const KIND_ANNOUNCE: u8 = 2;

fn encode_request(
    kind: u8,
    call_id: u64,
    trace: &TraceContext,
    // Wire-envelope overload fields: (priority, relative budget in µs).
    (priority, budget_micros): (CallPriority, u64),
    iface: InterfaceId,
    op: &str,
    body: &[u8],
) -> PooledBuf {
    let mut buf = PooledBuf::acquire(
        1 + 8 + TraceContext::WIRE_LEN + OVERLOAD_WIRE_LEN + 8 + 2 + op.len() + body.len(),
    );
    buf.extend_from_slice(&[kind]);
    buf.extend_from_slice(&call_id.to_be_bytes());
    odp_wire::trace::put_trace(&mut buf, trace);
    put_overload(&mut buf, priority, budget_micros);
    buf.extend_from_slice(&iface.raw().to_be_bytes());
    buf.extend_from_slice(&(op.len() as u16).to_be_bytes());
    buf.extend_from_slice(op.as_bytes());
    buf.extend_from_slice(body);
    buf
}

fn encode_reply(call_id: u64, body: &[u8]) -> PooledBuf {
    let mut buf = PooledBuf::acquire(1 + 8 + body.len());
    buf.extend_from_slice(&[KIND_REPLY]);
    buf.extend_from_slice(&call_id.to_be_bytes());
    buf.extend_from_slice(body);
    buf
}

enum Parsed {
    Request {
        call_id: u64,
        trace: TraceContext,
        priority: CallPriority,
        /// Relative deadline budget in microseconds (`0` = none); the
        /// demux anchors it to the arrival instant.
        budget_micros: u64,
        iface: InterfaceId,
        op: String,
        body: Bytes,
        announcement: bool,
    },
    Reply {
        call_id: u64,
        body: Bytes,
    },
}

fn parse(mut payload: Bytes) -> Result<Parsed, RexError> {
    use bytes::Buf;
    if payload.len() < 9 {
        return Err(RexError::Malformed);
    }
    let kind = payload.get_u8();
    let call_id = payload.get_u64();
    match kind {
        KIND_REPLY => Ok(Parsed::Reply {
            call_id,
            body: payload,
        }),
        KIND_REQUEST | KIND_ANNOUNCE => {
            let trace = get_trace(&mut payload).ok_or(RexError::Malformed)?;
            let (priority, budget_micros) =
                get_overload(&mut payload).ok_or(RexError::Malformed)?;
            if payload.len() < 10 {
                return Err(RexError::Malformed);
            }
            let iface = InterfaceId(payload.get_u64());
            let op_len = payload.get_u16() as usize;
            if payload.len() < op_len {
                return Err(RexError::Malformed);
            }
            let op_bytes = payload.split_to(op_len);
            let op = std::str::from_utf8(&op_bytes)
                .map_err(|_| RexError::Malformed)?
                .to_owned();
            Ok(Parsed::Request {
                call_id,
                trace,
                priority,
                budget_micros,
                iface,
                op,
                body: payload,
                announcement: kind == KIND_ANNOUNCE,
            })
        }
        _ => Err(RexError::Malformed),
    }
}

/// Bound on cached replies per endpoint; beyond it the oldest entries are
/// evicted (a retransmission arriving later than this is answered by
/// re-execution being suppressed at the transaction layer).
const REPLY_CACHE_CAP: usize = 4096;

struct ServerState {
    /// Completed calls: reply bodies (pooled; eviction recycles) for
    /// retransmission.
    cache: HashMap<(NodeId, u64), PooledBuf>,
    /// FIFO of cache keys for eviction.
    order: VecDeque<(NodeId, u64)>,
    /// Calls currently executing (duplicates dropped).
    executing: HashSet<(NodeId, u64)>,
}

/// One node's REX protocol engine: client and server side in one object, as
/// the paper notes "some applications may be both client and server
/// simultaneously" (§6).
pub struct RexEndpoint {
    node: NodeId,
    transport: Arc<dyn Transport>,
    pending: Mutex<HashMap<u64, Sender<Bytes>>>,
    next_call: AtomicU64,
    handler: Mutex<Option<Handler>>,
    server: Mutex<ServerState>,
    running: Arc<AtomicBool>,
    job_tx: Sender<RexJob>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Calls issued (for experiment accounting).
    pub calls_sent: AtomicU64,
    /// Requests executed by the handler (deduplicated count).
    pub requests_executed: AtomicU64,
    /// Duplicate requests suppressed or answered from cache.
    pub duplicates_suppressed: AtomicU64,
    /// Calls that failed because their deadline budget ran out (including
    /// calls issued with an already-exhausted budget).
    pub deadlines_expired: AtomicU64,
    /// Incoming frames dropped because they did not parse as REX messages
    /// (hostile or corrupt peer; each drop is also a telemetry event).
    pub malformed_dropped: AtomicU64,
}

struct RexJob {
    from: NodeId,
    call_id: u64,
    trace: TraceContext,
    priority: CallPriority,
    /// Absolute deadline anchored at arrival; `None` when no budget was
    /// sent. Anchoring happens in the demux thread so time spent queued
    /// behind other jobs counts against the caller's budget.
    deadline: Option<Instant>,
    iface: InterfaceId,
    op: String,
    body: Bytes,
    announcement: bool,
}

impl RexEndpoint {
    /// Registers `node` on `transport` and starts the demultiplexer plus
    /// `workers` handler threads.
    ///
    /// # Errors
    ///
    /// Any [`NetError`] from registration.
    pub fn new(
        transport: Arc<dyn Transport>,
        node: NodeId,
        workers: usize,
    ) -> Result<Arc<Self>, NetError> {
        let endpoint = transport.register(node)?;
        let (job_tx, job_rx) = unbounded::<RexJob>();
        let ep = Arc::new(Self {
            node,
            transport,
            pending: Mutex::new(HashMap::new()),
            // Seed the call-id space from the clock so ids from a restarted
            // node do not collide with ids its predecessor left in peer
            // reply caches.
            next_call: AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
                    | 1,
            ),
            handler: Mutex::new(None),
            server: Mutex::new(ServerState {
                cache: HashMap::new(),
                order: VecDeque::new(),
                executing: HashSet::new(),
            }),
            running: Arc::new(AtomicBool::new(true)),
            job_tx,
            threads: Mutex::new(Vec::new()),
            calls_sent: AtomicU64::new(0),
            requests_executed: AtomicU64::new(0),
            duplicates_suppressed: AtomicU64::new(0),
            deadlines_expired: AtomicU64::new(0),
            malformed_dropped: AtomicU64::new(0),
        });
        let mut threads = Vec::new();
        let demux_ep = Arc::clone(&ep);
        match std::thread::Builder::new()
            .name(format!("rex-demux-{node}"))
            .spawn(move || demux_ep.demux(&endpoint))
        {
            Ok(h) => threads.push(h),
            Err(e) => {
                ep.running.store(false, Ordering::SeqCst);
                ep.transport.deregister(node);
                return Err(NetError::Io(format!("spawn demux thread: {e}")));
            }
        }
        for w in 0..workers.max(1) {
            let worker_ep = Arc::clone(&ep);
            let rx = job_rx.clone();
            match std::thread::Builder::new()
                .name(format!("rex-worker-{node}-{w}"))
                .spawn(move || worker_ep.worker(&rx))
            {
                Ok(h) => threads.push(h),
                Err(e) => {
                    // Unwind cleanly: stop the threads already running and
                    // free the node id, then report instead of panicking.
                    ep.running.store(false, Ordering::SeqCst);
                    ep.transport.deregister(node);
                    return Err(NetError::Io(format!("spawn worker thread: {e}")));
                }
            }
        }
        *ep.threads.lock() = threads;
        Ok(ep)
    }

    /// The node this endpoint speaks for.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the server-side handler. Replaces any previous handler.
    pub fn set_handler(&self, handler: Handler) {
        *self.handler.lock() = Some(handler);
    }

    /// Performs an interrogation: sends the request, retransmits per QoS,
    /// and blocks for the reply body.
    ///
    /// # Errors
    ///
    /// [`RexError::Timeout`] after the deadline, [`RexError::Unreachable`]
    /// if the destination is unregistered, or transport failures.
    pub fn call(
        &self,
        to: NodeId,
        iface: InterfaceId,
        op: &str,
        body: &[u8],
        qos: CallQos,
    ) -> Result<Bytes, RexError> {
        // Protocol layers (groups, transactions, …) issue REX calls from
        // inside a traced dispatch; the thread-local current trace keeps
        // their nested invocations causally linked without plumbing.
        self.call_traced(to, iface, op, body, qos, odp_telemetry::current())
    }

    /// [`RexEndpoint::call`] with an explicit trace context stamped into
    /// the request envelope (used by the access layer, which owns the
    /// per-call context).
    ///
    /// # Errors
    ///
    /// Same as [`RexEndpoint::call`].
    pub fn call_traced(
        &self,
        to: NodeId,
        iface: InterfaceId,
        op: &str,
        body: &[u8],
        qos: CallQos,
        trace: TraceContext,
    ) -> Result<Bytes, RexError> {
        if !self.running.load(Ordering::SeqCst) {
            return Err(RexError::Closed);
        }
        if qos.deadline.is_zero() {
            // The caller's end-to-end budget is already spent: fail fast
            // without touching the network (deadline propagation clamps
            // retries down to zero rather than skipping them implicitly).
            self.deadlines_expired.fetch_add(1, Ordering::Relaxed);
            return Err(RexError::Timeout);
        }
        self.calls_sent.fetch_add(1, Ordering::Relaxed);
        let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(call_id, tx);
        let cleanup = PendingGuard {
            pending: &self.pending,
            call_id,
        };
        // Encoded once into a pooled buffer and reused verbatim for every
        // retransmission; the drop at return recycles it. The deadline
        // budget is *relative* (clocks are unsynchronized): the server
        // re-anchors it at arrival, so it is stamped once at first send —
        // retransmissions deliberately carry the original budget, since a
        // duplicate is answered from the reply cache anyway.
        let budget_micros = u64::try_from(qos.deadline.as_micros()).unwrap_or(u64::MAX);
        let msg = encode_request(
            KIND_REQUEST,
            call_id,
            &trace,
            (qos.priority, budget_micros),
            iface,
            op,
            body,
        );
        let deadline = Instant::now() + qos.deadline;
        loop {
            match self.transport.send_frame(self.node, to, &msg) {
                Ok(()) => {}
                Err(NetError::UnknownNode(n) | NetError::Unreachable(n)) => {
                    return Err(RexError::Unreachable(n))
                }
                Err(e) => return Err(RexError::Transport(e)),
            }
            let now = Instant::now();
            if now >= deadline {
                self.deadlines_expired.fetch_add(1, Ordering::Relaxed);
                return Err(RexError::Timeout);
            }
            let wait = qos.retry_interval.min(deadline - now);
            match rx.recv_timeout(wait) {
                Ok(reply) => {
                    drop(cleanup);
                    return Ok(reply);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        self.deadlines_expired.fetch_add(1, Ordering::Relaxed);
                        return Err(RexError::Timeout);
                    }
                    // Loop: retransmit.
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(RexError::Closed)
                }
            }
        }
    }

    /// Sends an announcement: one datagram, no reply, no retransmission.
    ///
    /// # Errors
    ///
    /// Only *local* engineering errors (unknown destination, transport
    /// closed) are reported; remote failure is invisible by design (§5.1).
    pub fn announce(
        &self,
        to: NodeId,
        iface: InterfaceId,
        op: &str,
        body: &[u8],
    ) -> Result<(), RexError> {
        self.announce_traced(to, iface, op, body, odp_telemetry::current())
    }

    /// [`RexEndpoint::announce`] with an explicit trace context stamped
    /// into the announcement envelope.
    ///
    /// # Errors
    ///
    /// Same as [`RexEndpoint::announce`].
    pub fn announce_traced(
        &self,
        to: NodeId,
        iface: InterfaceId,
        op: &str,
        body: &[u8],
        trace: TraceContext,
    ) -> Result<(), RexError> {
        if !self.running.load(Ordering::SeqCst) {
            return Err(RexError::Closed);
        }
        let call_id = self.next_call.fetch_add(1, Ordering::Relaxed);
        // Announcements are best-effort bulk traffic with no reply and no
        // caller waiting: lowest priority, no deadline budget.
        let msg = encode_request(
            KIND_ANNOUNCE,
            call_id,
            &trace,
            (CallPriority::Low, 0),
            iface,
            op,
            body,
        );
        match self.transport.send_frame(self.node, to, &msg) {
            Ok(()) => Ok(()),
            Err(NetError::UnknownNode(n) | NetError::Unreachable(n)) => {
                Err(RexError::Unreachable(n))
            }
            Err(e) => Err(RexError::Transport(e)),
        }
    }

    /// Shuts the endpoint down: deregisters from the transport and joins
    /// all protocol threads. Idempotent.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        self.transport.deregister(self.node);
        // Wake pending callers.
        self.pending.lock().clear();
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            if std::thread::current().id() != t.thread().id() {
                // odp-lint: allow(l6, reason = "a panicked protocol thread is already counted; shutdown still completes")
                let _ = t.join();
            }
        }
    }

    fn demux(self: &Arc<Self>, endpoint: &Endpoint) {
        loop {
            let env = match endpoint.recv_timeout(Duration::from_millis(100)) {
                Ok(env) => env,
                Err(NetError::Timeout) => {
                    if self.running.load(Ordering::SeqCst) {
                        continue;
                    }
                    return;
                }
                Err(_) => return,
            };
            let from = env.from;
            let frame_len = env.payload.len();
            match parse(env.payload) {
                Ok(Parsed::Reply { call_id, body }) => {
                    // Take the waiter out under the lock, deliver after
                    // releasing it: an `if let` on the locked map would pin
                    // the scrutinee temporary — and the pending-map lock —
                    // across the channel send.
                    let waiter = self.pending.lock().remove(&call_id);
                    if let Some(tx) = waiter {
                        // odp-lint: allow(l6, reason = "receiver gone means the caller timed out; dropping the late reply is the protocol's answer")
                        let _ = tx.send(body);
                    }
                    // Late replies after timeout are silently dropped.
                }
                Ok(Parsed::Request {
                    call_id,
                    trace,
                    priority,
                    budget_micros,
                    iface,
                    op,
                    body,
                    announcement,
                }) => {
                    let deadline = (budget_micros > 0)
                        .then(|| Instant::now() + Duration::from_micros(budget_micros));
                    // odp-lint: allow(l6, reason = "send fails only after shutdown closed the worker pool; the peer retries by deadline")
                    let _ = self.job_tx.send(RexJob {
                        from,
                        call_id,
                        trace,
                        priority,
                        deadline,
                        iface,
                        op,
                        body,
                        announcement,
                    });
                }
                Err(_) => {
                    // Hostile or corrupt peer: drop, never crash (§4.2) —
                    // but count the drop and leave a failure event on the
                    // timeline so corruption is observable.
                    self.malformed_dropped.fetch_add(1, Ordering::Relaxed);
                    odp_telemetry::hub().event(
                        "rex.malformed",
                        self.node.raw(),
                        0,
                        format!("dropped {frame_len}-byte frame from {from}"),
                    );
                }
            }
        }
    }

    fn worker(self: &Arc<Self>, rx: &Receiver<RexJob>) {
        loop {
            let job = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(job) => job,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.running.load(Ordering::SeqCst) {
                        continue;
                    }
                    return;
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            };
            let key = (job.from, job.call_id);
            if !job.announcement {
                let mut server = self.server.lock();
                if let Some(cached) = server.cache.get(&key) {
                    // Retransmission of a completed call: resend the reply,
                    // do NOT re-execute.
                    self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                    let reply = encode_reply(job.call_id, cached);
                    drop(server);
                    // odp-lint: allow(l6, reason = "reply delivery is best-effort; the caller's retransmit re-requests it from the cache")
                    let _ = self.transport.send_frame(self.node, job.from, &reply);
                    continue;
                }
                if !server.executing.insert(key) {
                    // Already running on another worker: drop the duplicate.
                    self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let handler = self.handler.lock().clone();
            let reply_body = match handler {
                Some(h) => {
                    self.requests_executed.fetch_add(1, Ordering::Relaxed);
                    h(RexRequest {
                        from: job.from,
                        iface: job.iface,
                        op: job.op,
                        body: job.body,
                        announcement: job.announcement,
                        trace: job.trace,
                        priority: job.priority,
                        deadline: job.deadline,
                    })
                }
                None => PooledBuf::default(),
            };
            if job.announcement {
                continue;
            }
            let reply = encode_reply(job.call_id, &reply_body);
            {
                let mut server = self.server.lock();
                server.executing.remove(&key);
                // The body moves into the cache; eviction recycles it.
                server.cache.insert(key, reply_body);
                server.order.push_back(key);
                while server.order.len() > REPLY_CACHE_CAP {
                    if let Some(old) = server.order.pop_front() {
                        server.cache.remove(&old);
                    }
                }
            }
            // odp-lint: allow(l6, reason = "reply delivery is best-effort; the caller's retransmit re-requests it from the cache")
            let _ = self.transport.send_frame(self.node, job.from, &reply);
        }
    }
}

impl Drop for RexEndpoint {
    fn drop(&mut self) {
        // Route through `shutdown` so a drop after an explicit shutdown does
        // NOT deregister the node id again: a supervisor may already have
        // re-registered a replacement endpoint under the same id, and a
        // second deregister here would silently tear the replacement down.
        self.shutdown();
    }
}

impl fmt::Debug for RexEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RexEndpoint")
            .field("node", &self.node)
            .field("pending", &self.pending.lock().len())
            .finish()
    }
}

struct PendingGuard<'a> {
    pending: &'a Mutex<HashMap<u64, Sender<Bytes>>>,
    call_id: u64,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.pending.lock().remove(&self.call_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkConfig, SimNet};
    use crate::transport::Envelope;
    use bytes::{BufMut, BytesMut};

    fn pair(net: &SimNet) -> (Arc<RexEndpoint>, Arc<RexEndpoint>) {
        let t: Arc<dyn Transport> = Arc::new(net.clone());
        let a = RexEndpoint::new(Arc::clone(&t), NodeId(1), 2).unwrap();
        let b = RexEndpoint::new(t, NodeId(2), 2).unwrap();
        (a, b)
    }

    fn echo_handler() -> Handler {
        Arc::new(|req: RexRequest| PooledBuf::from_slice(&req.body))
    }

    #[test]
    fn basic_interrogation() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        let reply = a
            .call(
                NodeId(2),
                InterfaceId(1),
                "echo",
                b"hello",
                CallQos::default(),
            )
            .unwrap();
        assert_eq!(reply, Bytes::from_static(b"hello"));
    }

    #[test]
    fn concurrent_calls_from_many_threads() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for j in 0..20u64 {
                        let body = Bytes::copy_from_slice(&(i * 1000 + j).to_be_bytes());
                        let reply = a
                            .call(NodeId(2), InterfaceId(1), "echo", &body, CallQos::default())
                            .unwrap();
                        assert_eq!(reply, body);
                    }
                });
            }
        });
        assert_eq!(a.calls_sent.load(Ordering::Relaxed), 160);
    }

    #[test]
    fn timeout_when_partitioned() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        net.partition(NodeId(1), NodeId(2));
        let err = a
            .call(
                NodeId(2),
                InterfaceId(1),
                "echo",
                b"",
                CallQos::with_deadline(Duration::from_millis(80)),
            )
            .unwrap_err();
        assert_eq!(err, RexError::Timeout);
    }

    #[test]
    fn zero_deadline_fails_fast_without_sending() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        let qos = CallQos::default().clamp_to(Duration::ZERO);
        assert_eq!(qos.deadline, Duration::ZERO);
        let start = Instant::now();
        let err = a
            .call(NodeId(2), InterfaceId(1), "echo", b"", qos)
            .unwrap_err();
        assert_eq!(err, RexError::Timeout);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(a.calls_sent.load(Ordering::Relaxed), 0);
        assert_eq!(a.deadlines_expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clamp_to_shrinks_but_never_grows_deadline() {
        let qos = CallQos {
            deadline: Duration::from_millis(500),
            retry_interval: Duration::from_millis(50),
            priority: CallPriority::Normal,
        };
        assert_eq!(
            qos.clamp_to(Duration::from_millis(200)).deadline,
            Duration::from_millis(200)
        );
        assert_eq!(
            qos.clamp_to(Duration::from_secs(10)).deadline,
            Duration::from_millis(500)
        );
        // Retry cadence is untouched by clamping.
        assert_eq!(
            qos.clamp_to(Duration::from_millis(200)).retry_interval,
            Duration::from_millis(50)
        );
    }

    #[test]
    fn unreachable_when_deregistered() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.shutdown();
        let err = a
            .call(NodeId(2), InterfaceId(1), "x", b"", CallQos::default())
            .unwrap_err();
        assert_eq!(err, RexError::Unreachable(NodeId(2)));
    }

    #[test]
    fn retransmission_recovers_from_loss_and_executes_once() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        // 60% loss both ways: retransmission must push the call through.
        net.set_link_bidir(NodeId(1), NodeId(2), LinkConfig::with_loss(0.6));
        let qos = CallQos {
            deadline: Duration::from_secs(10),
            retry_interval: Duration::from_millis(5),
            priority: CallPriority::Normal,
        };
        for _ in 0..10 {
            let reply = a
                .call(NodeId(2), InterfaceId(1), "echo", b"x", qos)
                .unwrap();
            assert_eq!(reply, Bytes::from_static(b"x"));
        }
        // Each logical call executed exactly once despite duplicates.
        assert_eq!(b.requests_executed.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn duplicates_answered_from_cache() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_handler(Arc::new(move |req| {
            h.fetch_add(1, Ordering::SeqCst);
            PooledBuf::from_slice(&req.body)
        }));
        // Lose every reply (but not requests): client retransmits, server
        // must answer duplicates from cache without re-executing.
        net.set_link(NodeId(2), NodeId(1), LinkConfig::with_loss(0.7));
        let qos = CallQos {
            deadline: Duration::from_secs(10),
            retry_interval: Duration::from_millis(5),
            priority: CallPriority::Normal,
        };
        let reply = a
            .call(NodeId(2), InterfaceId(1), "echo", b"q", qos)
            .unwrap();
        assert_eq!(reply, Bytes::from_static(b"q"));
        assert_eq!(hits.load(Ordering::SeqCst), 1, "handler ran more than once");
    }

    #[test]
    fn announcements_fire_and_forget() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        b.set_handler(Arc::new(move |req| {
            assert!(req.announcement);
            s.fetch_add(1, Ordering::SeqCst);
            PooledBuf::default()
        }));
        for _ in 0..5 {
            a.announce(NodeId(2), InterfaceId(1), "tick", b"").unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while seen.load(Ordering::SeqCst) < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn call_to_handlerless_server_returns_empty() {
        let net = SimNet::perfect();
        let (a, _b) = pair(&net);
        let reply = a
            .call(NodeId(2), InterfaceId(1), "x", b"", CallQos::default())
            .unwrap();
        assert!(reply.is_empty());
    }

    #[test]
    fn works_over_tcp_too() {
        let net = crate::tcp::TcpNetwork::new();
        let t: Arc<dyn Transport> = Arc::new(net);
        let a = RexEndpoint::new(Arc::clone(&t), NodeId(1), 2).unwrap();
        let b = RexEndpoint::new(t, NodeId(2), 2).unwrap();
        b.set_handler(echo_handler());
        let reply = a
            .call(
                NodeId(2),
                InterfaceId(1),
                "echo",
                b"tcp",
                CallQos::with_deadline(Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(reply, Bytes::from_static(b"tcp"));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_calls() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        a.shutdown();
        a.shutdown();
        assert_eq!(
            a.call(NodeId(2), InterfaceId(1), "x", b"", CallQos::default())
                .unwrap_err(),
            RexError::Closed
        );
    }

    #[test]
    fn malformed_messages_ignored() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        b.set_handler(echo_handler());
        // Inject garbage straight onto the transport.
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"\xff\xff"),
        ))
        .unwrap();
        net.send(Envelope::new(NodeId(1), NodeId(2), Bytes::new()))
            .unwrap();
        // Endpoint still works.
        let reply = a
            .call(NodeId(2), InterfaceId(1), "echo", b"ok", CallQos::default())
            .unwrap();
        assert_eq!(reply, Bytes::from_static(b"ok"));
    }

    #[test]
    fn parse_rejects_short_buffers() {
        assert!(matches!(
            parse(Bytes::from_static(b"")),
            Err(RexError::Malformed)
        ));
        assert!(matches!(
            parse(Bytes::from_static(b"\x00\x01")),
            Err(RexError::Malformed)
        ));
        assert!(matches!(
            parse(Bytes::from_static(b"\x09\x00\x00\x00\x00\x00\x00\x00\x00")),
            Err(RexError::Malformed)
        ));
        // A request whose trace context is truncated: kind + call id are
        // intact but only 10 of the 25 trace bytes follow.
        let mut truncated = BytesMut::new();
        truncated.put_u8(KIND_REQUEST);
        truncated.put_u64(42);
        truncated.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            parse(truncated.freeze()),
            Err(RexError::Malformed)
        ));
        // A request whose trace context is complete but whose overload
        // fields (priority + deadline budget) are truncated.
        let mut no_overload = BytesMut::new();
        no_overload.put_u8(KIND_REQUEST);
        no_overload.put_u64(42);
        no_overload.extend_from_slice(&[0u8; TraceContext::WIRE_LEN]);
        no_overload.extend_from_slice(&[0u8; 3]);
        assert!(matches!(
            parse(no_overload.freeze()),
            Err(RexError::Malformed)
        ));
    }

    #[test]
    fn request_trace_context_survives_the_wire() {
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 8,
            parent_span: 6,
            flags: odp_telemetry::FLAG_SAMPLED,
        };
        let msg = encode_request(
            KIND_REQUEST,
            1,
            &ctx,
            (CallPriority::Normal, 0),
            InterfaceId(3),
            "op",
            b"body",
        );
        match parse(Bytes::copy_from_slice(&msg)).unwrap() {
            Parsed::Request { trace, op, .. } => {
                assert_eq!(trace, ctx);
                assert_eq!(op, "op");
            }
            Parsed::Reply { .. } => panic!("parsed as reply"),
        }
    }

    #[test]
    fn request_overload_fields_survive_the_wire() {
        let msg = encode_request(
            KIND_REQUEST,
            2,
            &TraceContext::NONE,
            (CallPriority::High, 750_000),
            InterfaceId(3),
            "op",
            b"",
        );
        match parse(Bytes::copy_from_slice(&msg)).unwrap() {
            Parsed::Request {
                priority,
                budget_micros,
                ..
            } => {
                assert_eq!(priority, CallPriority::High);
                assert_eq!(budget_micros, 750_000);
            }
            Parsed::Reply { .. } => panic!("parsed as reply"),
        }
    }

    #[test]
    fn handler_sees_priority_and_arrival_anchored_deadline() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        type SeenOverload = Option<(CallPriority, Option<Instant>)>;
        let seen: Arc<Mutex<SeenOverload>> = Arc::new(Mutex::new(None));
        let s = Arc::clone(&seen);
        b.set_handler(Arc::new(move |req: RexRequest| {
            *s.lock() = Some((req.priority, req.deadline));
            PooledBuf::from_slice(&req.body)
        }));
        let qos =
            CallQos::with_deadline(Duration::from_millis(500)).with_priority(CallPriority::High);
        let before = Instant::now();
        a.call(NodeId(2), InterfaceId(1), "echo", b"x", qos)
            .unwrap();
        let (priority, deadline) = seen.lock().take().expect("handler ran");
        assert_eq!(priority, CallPriority::High);
        let deadline = deadline.expect("interrogations carry a budget");
        // Anchored at arrival: the reconstructed deadline sits within the
        // caller's budget window of the send instant.
        assert!(deadline > before);
        assert!(deadline <= Instant::now() + Duration::from_millis(500));
        // Announcements carry no budget and the bulk priority.
        a.announce(NodeId(2), InterfaceId(1), "tick", b"").unwrap();
        let wait = Instant::now() + Duration::from_secs(2);
        while seen.lock().is_none() && Instant::now() < wait {
            std::thread::sleep(Duration::from_millis(5));
        }
        let (priority, deadline) = seen.lock().take().expect("announcement arrived");
        assert_eq!(priority, CallPriority::Low);
        assert_eq!(deadline, None);
    }

    #[test]
    fn handler_sees_caller_trace() {
        let net = SimNet::perfect();
        let (a, b) = pair(&net);
        let seen = Arc::new(Mutex::new(TraceContext::NONE));
        let s = Arc::clone(&seen);
        b.set_handler(Arc::new(move |req: RexRequest| {
            *s.lock() = req.trace;
            PooledBuf::from_slice(&req.body)
        }));
        let ctx = TraceContext {
            trace_id: 99,
            span_id: 5,
            parent_span: 4,
            flags: odp_telemetry::FLAG_SAMPLED,
        };
        a.call_traced(
            NodeId(2),
            InterfaceId(1),
            "echo",
            b"x",
            CallQos::default(),
            ctx,
        )
        .unwrap();
        assert_eq!(*seen.lock(), ctx);
    }

    #[test]
    fn malformed_frames_counted_and_recorded() {
        let net = SimNet::perfect();
        let (_a, b) = pair(&net);
        net.send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"\xff\xff"),
        ))
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while b.malformed_dropped.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.malformed_dropped.load(Ordering::Relaxed), 1);
    }
}
