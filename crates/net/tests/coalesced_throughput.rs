//! Regression test for the coalesced single-writer TCP path: concurrent
//! callers sharing one connection must *gain* from it.
//!
//! Before this path existed, every sender serialized on a per-peer
//! `Mutex<TcpStream>` held across the syscall, so adding client threads
//! added lock convoy, not throughput. With the bounded-queue writer
//! draining batches, eight threads pipelining calls over the same
//! connection must beat one thread's aggregate rate by at least 3×.

use odp_net::{CallQos, RexEndpoint, TcpNetwork, Transport};
use odp_types::{InterfaceId, NodeId};
use odp_wire::PooledBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const TOTAL_CALLS: usize = 4800;

fn qos() -> CallQos {
    CallQos::with_deadline(Duration::from_secs(30))
}

/// Calls/second for `threads` caller threads doing `per_thread` echo
/// calls each through the same client endpoint (one TCP connection).
fn aggregate_rate(client: &Arc<RexEndpoint>, threads: usize, per_thread: usize) -> f64 {
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for i in 0..per_thread {
                    let body = (i as u64).to_be_bytes();
                    let reply = client
                        .call(NodeId(2), InterfaceId(1), "echo", &body, qos())
                        .expect("echo call");
                    assert_eq!(&reply[..], &body[..]);
                }
            });
        }
    });
    (threads * per_thread) as f64 / t.elapsed().as_secs_f64()
}

#[test]
fn eight_threads_share_one_connection_at_3x_single_thread_rate() {
    let transport: Arc<dyn Transport> = Arc::new(TcpNetwork::new());
    let client = RexEndpoint::new(Arc::clone(&transport), NodeId(1), 2).unwrap();
    let server = RexEndpoint::new(transport, NodeId(2), THREADS).unwrap();
    server.set_handler(Arc::new(|req| PooledBuf::from_slice(&req.body)));

    // Warm-up: establish the connection, fill the buffer pool, fault in
    // the reply cache paths, so neither run pays one-time costs.
    aggregate_rate(&client, 1, 100);

    // Same total call count in both runs so each measurement window is
    // long enough (~0.1 s) to ride out scheduler noise.
    let single = aggregate_rate(&client, 1, TOTAL_CALLS);
    let eight = aggregate_rate(&client, THREADS, TOTAL_CALLS / THREADS);

    // Pipelining calls over one connection hides *latency* (the idle
    // waits between the ~8 thread hops of a round trip); the CPU work per
    // call still has to run somewhere. On a multi-core box the stages run
    // concurrently and 3x is a conservative floor; on a 1–2 core CI box
    // the whole pipeline shares one core, so the ceiling is the CPU cost
    // per call — the only observable guarantee left is that sharing the
    // connection does not *collapse* throughput (the old design convoyed
    // every sender on a per-peer `Mutex<TcpStream>` held across writes).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let floor = if cores >= 4 { 3.0 } else { 0.9 };

    eprintln!(
        "single-thread: {single:.0} calls/s, {THREADS} threads: {eight:.0} calls/s \
         ({:.2}x, {cores} cores, floor {floor}x)",
        eight / single
    );
    assert!(
        eight >= floor * single,
        "expected >={floor}x aggregate throughput from {THREADS} threads over one \
         connection, got {single:.0} -> {eight:.0} calls/s ({:.2}x)",
        eight / single
    );

    client.shutdown();
    server.shutdown();
}
