//! The transport contract: every [`Transport`] implementation must satisfy
//! the same observable behaviour — the engineering model depends on
//! simulated and real networks being interchangeable (§5.4's "several
//! protocols by which an interface can be accessed").

use bytes::Bytes;
use odp_net::{CallQos, Envelope, NetError, RexEndpoint, SimNet, TcpNetwork, Transport};
use odp_types::{InterfaceId, NodeId};
use std::sync::Arc;
use std::time::Duration;

fn contract(transport: Arc<dyn Transport>, label: &str) {
    // Registration uniqueness.
    let a = transport
        .register(NodeId(1))
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(matches!(
        transport.register(NodeId(1)),
        Err(NetError::AlreadyRegistered(_))
    ));
    let b = transport.register(NodeId(2)).unwrap();
    assert!(transport.is_registered(NodeId(1)));

    // Point-to-point delivery with sender identity.
    transport
        .send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"m1"),
        ))
        .unwrap();
    let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(got.from, NodeId(1));
    assert_eq!(got.to, NodeId(2));
    assert_eq!(got.payload, Bytes::from_static(b"m1"));

    // Per-sender FIFO (both implementations provide it; REX does not
    // require it but group relays benefit).
    for i in 0..50u8 {
        transport
            .send(Envelope::new(
                NodeId(1),
                NodeId(2),
                Bytes::copy_from_slice(&[i]),
            ))
            .unwrap();
    }
    for i in 0..50u8 {
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap().payload[0],
            i,
            "{label}"
        );
    }

    // Unknown destinations fail fast.
    assert!(matches!(
        transport.send(Envelope::new(NodeId(1), NodeId(9), Bytes::new())),
        Err(NetError::UnknownNode(_))
    ));

    // Deregistration makes a node unreachable; re-registration revives it.
    transport.deregister(NodeId(2));
    assert!(!transport.is_registered(NodeId(2)));
    assert!(transport
        .send(Envelope::new(NodeId(1), NodeId(2), Bytes::new()))
        .is_err());
    let b2 = transport.register(NodeId(2)).unwrap();
    transport
        .send(Envelope::new(
            NodeId(1),
            NodeId(2),
            Bytes::from_static(b"back"),
        ))
        .unwrap();
    assert_eq!(
        b2.recv_timeout(Duration::from_secs(5)).unwrap().payload,
        Bytes::from_static(b"back"),
        "{label}"
    );
    let _ = a;
}

#[test]
fn simnet_satisfies_the_contract() {
    contract(Arc::new(SimNet::perfect()), "simnet");
}

#[test]
fn tcp_satisfies_the_contract() {
    contract(Arc::new(TcpNetwork::new()), "tcp");
}

/// REX behaves identically over both transports: the engineering layers
/// above cannot tell them apart.
fn rex_over(transport: Arc<dyn Transport>, label: &str) {
    let client = RexEndpoint::new(Arc::clone(&transport), NodeId(10), 2).unwrap();
    let server = RexEndpoint::new(transport, NodeId(20), 2).unwrap();
    server.set_handler(Arc::new(|req| {
        let mut reply = req.body.to_vec();
        reply.reverse();
        odp_wire::PooledBuf::from_slice(&reply)
    }));
    for payload in [&b"abc"[..], &b""[..], &[0u8; 4096][..]] {
        let reply = client
            .call(
                NodeId(20),
                InterfaceId(1),
                "rev",
                payload,
                CallQos::with_deadline(Duration::from_secs(5)),
            )
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut expect = payload.to_vec();
        expect.reverse();
        assert_eq!(reply, Bytes::from(expect), "{label}");
    }
    client.shutdown();
    server.shutdown();
}

#[test]
fn rex_indistinguishable_over_simnet() {
    rex_over(Arc::new(SimNet::perfect()), "rex/simnet");
}

#[test]
fn rex_indistinguishable_over_tcp() {
    rex_over(Arc::new(TcpNetwork::new()), "rex/tcp");
}

/// At-most-once holds across seeds: under heavy random loss every logical
/// call executes exactly once, for many different loss patterns.
#[test]
fn at_most_once_across_seeds() {
    for seed in [1u64, 7, 42, 1991, 0xDEAD] {
        let net = SimNet::new(odp_net::SimNetConfig {
            seed,
            default_link: odp_net::LinkConfig::with_loss(0.4),
        });
        let t: Arc<dyn Transport> = Arc::new(net);
        let client = RexEndpoint::new(Arc::clone(&t), NodeId(1), 2).unwrap();
        let server = RexEndpoint::new(t, NodeId(2), 2).unwrap();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let h = Arc::clone(&hits);
        server.set_handler(Arc::new(move |req| {
            h.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            odp_wire::PooledBuf::from_slice(&req.body)
        }));
        let qos = CallQos {
            deadline: Duration::from_secs(20),
            retry_interval: Duration::from_millis(5),
            priority: odp_wire::CallPriority::Normal,
        };
        for i in 0..20u64 {
            let body = i.to_be_bytes();
            let reply = client
                .call(NodeId(2), InterfaceId(1), "echo", &body, qos)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(reply, Bytes::copy_from_slice(&body));
        }
        assert_eq!(
            hits.load(std::sync::atomic::Ordering::SeqCst),
            20,
            "seed {seed}: handler executed a duplicate"
        );
        client.shutdown();
        server.shutdown();
    }
}
