//! Integration tests: guarded objects over the network — authentication,
//! integrity, replay refusal, and policy enforcement, all from declarative
//! statements.

use odp_core::{ExportConfig, FnServant, InvokeError, Outcome, Servant, TransparencyPolicy, World};
use odp_security::secret::establish;
use odp_security::{AuthLayer, Guard, SecretStore, SecurityPolicy};
use odp_types::signature::{InterfaceTypeBuilder, OutcomeSig};
use odp_types::{InterfaceType, TypeSpec};
use odp_wire::Value;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn vault_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("read", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation("write", vec![TypeSpec::Int], vec![OutcomeSig::ok(vec![])])
        .build()
}

struct Rig {
    world: World,
    vault_ref: odp_wire::InterfaceRef,
    guard: Arc<Guard>,
    alice: Arc<SecretStore>,
    mallory: Arc<SecretStore>,
}

fn rig() -> Rig {
    let world = World::builder().capsules(2).build();
    let server_store = Arc::new(SecretStore::new("vault"));
    let alice = Arc::new(SecretStore::new("alice"));
    let mallory = Arc::new(SecretStore::new("mallory"));
    establish(&alice, &server_store, 11);
    // Mallory shares a secret too, but policy won't let her write.
    establish(&mallory, &server_store, 13);
    let policy = SecurityPolicy::deny_all()
        .allow("alice", &["read", "write"])
        .allow("mallory", &["read"]);
    let guard = Guard::generate(Arc::clone(&server_store), policy);
    let value = std::sync::atomic::AtomicI64::new(7);
    let servant = FnServant::new(vault_type(), move |op, args, _ctx| match op {
        "read" => Outcome::ok(vec![Value::Int(value.load(Ordering::SeqCst))]),
        "write" => {
            value.store(args[0].as_int().unwrap_or(0), Ordering::SeqCst);
            Outcome::ok(vec![])
        }
        _ => Outcome::fail("no such op"),
    });
    let vault_ref = world.capsule(0).export_with(
        Arc::new(servant) as Arc<dyn Servant>,
        ExportConfig {
            layers: vec![guard.clone() as Arc<dyn odp_core::ServerLayer>],
            ..ExportConfig::default()
        },
    );
    Rig {
        world,
        vault_ref,
        guard,
        alice,
        mallory,
    }
}

fn bind_as(rig: &Rig, store: &Arc<SecretStore>) -> odp_core::ClientBinding {
    let policy =
        TransparencyPolicy::default().with_layer(AuthLayer::new(Arc::clone(store), "vault"));
    rig.world
        .capsule(1)
        .bind_with(rig.vault_ref.clone(), policy)
}

#[test]
fn authenticated_authorized_calls_pass() {
    let r = rig();
    let binding = bind_as(&r, &r.alice);
    binding.interrogate("write", vec![Value::Int(42)]).unwrap();
    assert_eq!(binding.interrogate("read", vec![]).unwrap().int(), Some(42));
    assert_eq!(r.guard.admitted.load(Ordering::Relaxed), 2);
    assert_eq!(r.guard.denied.load(Ordering::Relaxed), 0);
}

#[test]
fn unauthenticated_calls_denied() {
    let r = rig();
    // No AuthLayer: the reference works at the engineering level but the
    // guard refuses ("a secure object must check that any access is from a
    // valid source", §7.1 — possessing the reference is not enough).
    let binding = r.world.capsule(1).bind(r.vault_ref.clone());
    let err = binding.interrogate("read", vec![]).unwrap_err();
    assert!(matches!(err, InvokeError::Denied(_)), "{err:?}");
    assert_eq!(r.guard.denied.load(Ordering::Relaxed), 1);
}

#[test]
fn policy_limits_operations_per_principal() {
    let r = rig();
    let binding = bind_as(&r, &r.mallory);
    // Mallory may read…
    assert!(binding.interrogate("read", vec![]).is_ok());
    // …but not write, despite valid authentication.
    let err = binding
        .interrogate("write", vec![Value::Int(0)])
        .unwrap_err();
    assert!(
        matches!(err, InvokeError::Denied(ref why) if why.contains("policy")),
        "{err:?}"
    );
}

#[test]
fn unknown_principal_denied() {
    let r = rig();
    let eve = Arc::new(SecretStore::new("eve"));
    // Eve shares no secret with the vault: minting fails client-side.
    let binding = bind_as(&r, &eve);
    let err = binding.interrogate("read", vec![]).unwrap_err();
    assert!(
        matches!(err, InvokeError::Denied(ref why) if why.contains("no secret")),
        "{err:?}"
    );
}

#[test]
fn forged_tag_denied() {
    let r = rig();
    // Hand-craft a request with a bogus token via raw annotations.
    let binding = r.world.capsule(1).bind(r.vault_ref.clone());
    let forged = odp_security::Token {
        principal: "alice".into(),
        nonce: 10_000,
        tag: 0x1234_5678,
    };
    let mut ann = std::collections::BTreeMap::new();
    ann.insert(odp_security::secret::AUTH_KEY.to_owned(), forged.encode());
    let err = binding
        .interrogate_annotated("read", vec![], ann)
        .unwrap_err();
    assert!(
        matches!(err, InvokeError::Denied(ref why) if why.contains("tag")),
        "{err:?}"
    );
}

#[test]
fn replayed_credentials_denied() {
    let r = rig();
    // Mint one valid token, then present it twice via raw annotations.
    let token = r
        .alice
        .mint("vault", r.vault_ref.iface, "read", &[])
        .unwrap();
    let binding = r.world.capsule(1).bind(r.vault_ref.clone());
    let mut ann = std::collections::BTreeMap::new();
    ann.insert(odp_security::secret::AUTH_KEY.to_owned(), token.encode());
    assert!(binding
        .interrogate_annotated("read", vec![], ann.clone())
        .is_ok());
    let err = binding
        .interrogate_annotated("read", vec![], ann)
        .unwrap_err();
    assert!(
        matches!(err, InvokeError::Denied(ref why) if why.contains("replay")),
        "{err:?}"
    );
}

#[test]
fn integrity_tampering_detected() {
    let r = rig();
    // Mint a token for writing 5, then send different arguments under it.
    let token = r
        .alice
        .mint("vault", r.vault_ref.iface, "write", &[Value::Int(5)])
        .unwrap();
    let binding = r.world.capsule(1).bind(r.vault_ref.clone());
    let mut ann = std::collections::BTreeMap::new();
    ann.insert(odp_security::secret::AUTH_KEY.to_owned(), token.encode());
    let err = binding
        .interrogate_annotated("write", vec![Value::Int(5_000_000)], ann)
        .unwrap_err();
    assert!(matches!(err, InvokeError::Denied(_)), "{err:?}");
}

#[test]
fn guard_composes_with_other_layers() {
    // Guard + serialized discipline together; the guard runs first.
    let world = World::builder().capsules(2).build();
    let server_store = Arc::new(SecretStore::new("svc"));
    let alice = Arc::new(SecretStore::new("alice"));
    establish(&alice, &server_store, 3);
    let guard = Guard::generate(
        Arc::clone(&server_store),
        SecurityPolicy::deny_all().allow_all("alice"),
    );
    let ty = InterfaceTypeBuilder::new()
        .interrogation("f", vec![], vec![OutcomeSig::ok(vec![])])
        .build();
    let servant = FnServant::new(ty, |_, _, _| Outcome::ok(vec![]));
    let r = world.capsule(0).export_with(
        Arc::new(servant) as Arc<dyn Servant>,
        ExportConfig {
            layers: vec![guard.clone() as Arc<dyn odp_core::ServerLayer>],
            discipline: odp_core::SyncDiscipline::Serialized,
            check_args: true,
        },
    );
    let binding = world.capsule(1).bind_with(
        r,
        TransparencyPolicy::default().with_layer(AuthLayer::new(alice, "svc")),
    );
    for _ in 0..5 {
        binding.interrogate("f", vec![]).unwrap();
    }
    assert_eq!(guard.admitted.load(Ordering::Relaxed), 5);
}
