//! Shared secrets and authentication tokens.
//!
//! §7.1: *"Shared secrets provide the basis for authenticating interactions
//! and achieving integrity and confidentiality."* A [`SecretStore`] holds
//! the pairwise secrets a principal shares with its peers; a [`Token`]
//! proves knowledge of the secret over one specific invocation.

use crate::siphash::{siphash24, SipKey};
use odp_types::InterfaceId;
use odp_wire::Value;
use parking_lot::Mutex;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 128-bit shared secret.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Secret(pub(crate) SipKey);

impl Secret {
    /// Generates a fresh random secret.
    #[must_use]
    pub fn generate<R: rand::Rng>(rng: &mut R) -> Self {
        let mut k0 = [0u8; 8];
        let mut k1 = [0u8; 8];
        rng.fill_bytes(&mut k0);
        rng.fill_bytes(&mut k1);
        Self(SipKey {
            k0: u64::from_le_bytes(k0),
            k1: u64::from_le_bytes(k1),
        })
    }

    /// Generates from a seed (reproducible tests and benches).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::generate(&mut rng)
    }
}

impl fmt::Debug for Secret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Secret(…)")
    }
}

/// An authentication token for one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The claiming principal.
    pub principal: String,
    /// Strictly increasing per principal (replay protection).
    pub nonce: u64,
    /// MAC over `(principal, iface, op, args digest, nonce)`.
    pub tag: u64,
}

/// Annotation key carrying the token.
pub const AUTH_KEY: &str = "__auth";

impl Token {
    /// Encodes the token as an annotation value.
    #[must_use]
    pub fn encode(&self) -> Value {
        Value::record([
            ("principal", Value::str(self.principal.clone())),
            ("nonce", Value::Int(self.nonce as i64)),
            ("tag", Value::Int(self.tag as i64)),
        ])
    }

    /// Decodes a token annotation.
    #[must_use]
    pub fn decode(value: &Value) -> Option<Self> {
        Some(Self {
            principal: value.field("principal")?.as_str()?.to_owned(),
            nonce: value.field("nonce")?.as_int()? as u64,
            tag: value.field("tag")?.as_int()? as u64,
        })
    }
}

/// Computes the MAC for one invocation under a shared secret.
#[must_use]
pub fn mac(
    secret: Secret,
    principal: &str,
    iface: InterfaceId,
    op: &str,
    args: &[Value],
    nonce: u64,
) -> u64 {
    // Bind the tag to the exact marshalled arguments: integrity.
    let args_bytes = odp_wire::marshal(args);
    let mut message = Vec::with_capacity(principal.len() + op.len() + 24 + args_bytes.len());
    message.extend_from_slice(principal.as_bytes());
    message.push(0);
    message.extend_from_slice(&iface.raw().to_le_bytes());
    message.extend_from_slice(op.as_bytes());
    message.push(0);
    message.extend_from_slice(&nonce.to_le_bytes());
    message.extend_from_slice(&args_bytes);
    siphash24(secret.0, &message)
}

/// A principal's secrets: what it shares with each peer, plus its nonce
/// counter for minting tokens.
pub struct SecretStore {
    me: String,
    secrets: Mutex<HashMap<String, Secret>>,
    next_nonce: AtomicU64,
}

impl SecretStore {
    /// Creates a store for principal `me`.
    #[must_use]
    pub fn new<S: Into<String>>(me: S) -> Self {
        Self {
            me: me.into(),
            secrets: Mutex::new(HashMap::new()),
            next_nonce: AtomicU64::new(1),
        }
    }

    /// This store's principal name.
    #[must_use]
    pub fn principal(&self) -> &str {
        &self.me
    }

    /// Records the secret shared with `peer`.
    pub fn share_with<S: Into<String>>(&self, peer: S, secret: Secret) {
        self.secrets.lock().insert(peer.into(), secret);
    }

    /// The secret shared with `peer`, if any.
    #[must_use]
    pub fn secret_for(&self, peer: &str) -> Option<Secret> {
        self.secrets.lock().get(peer).copied()
    }

    /// Mints a token authenticating `me` to `peer` for one invocation.
    ///
    /// Returns `None` if no secret is shared with `peer`.
    #[must_use]
    pub fn mint(&self, peer: &str, iface: InterfaceId, op: &str, args: &[Value]) -> Option<Token> {
        let secret = self.secret_for(peer)?;
        let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
        let tag = mac(secret, &self.me, iface, op, args, nonce);
        Some(Token {
            principal: self.me.clone(),
            nonce,
            tag,
        })
    }

    /// Verifies a token presented *to* this principal for an invocation.
    #[must_use]
    pub fn verify(&self, token: &Token, iface: InterfaceId, op: &str, args: &[Value]) -> bool {
        let Some(secret) = self.secret_for(&token.principal) else {
            return false;
        };
        mac(secret, &token.principal, iface, op, args, token.nonce) == token.tag
    }
}

impl fmt::Debug for SecretStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecretStore")
            .field("principal", &self.me)
            .field("peers", &self.secrets.lock().len())
            .finish()
    }
}

/// Establishes a shared secret between two principals (the out-of-band
/// key exchange the paper assumes).
pub fn establish(a: &SecretStore, b: &SecretStore, seed: u64) {
    let secret = Secret::from_seed(seed);
    a.share_with(b.principal(), secret);
    b.share_with(a.principal(), secret);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_verify() {
        let alice = SecretStore::new("alice");
        let server = SecretStore::new("server");
        establish(&alice, &server, 7);
        let args = vec![Value::Int(5)];
        let token = alice
            .mint("server", InterfaceId(1), "withdraw", &args)
            .unwrap();
        assert!(server.verify(&token, InterfaceId(1), "withdraw", &args));
    }

    #[test]
    fn tampered_arguments_fail_verification() {
        let alice = SecretStore::new("alice");
        let server = SecretStore::new("server");
        establish(&alice, &server, 7);
        let token = alice
            .mint("server", InterfaceId(1), "withdraw", &[Value::Int(5)])
            .unwrap();
        assert!(!server.verify(&token, InterfaceId(1), "withdraw", &[Value::Int(500)]));
        assert!(!server.verify(&token, InterfaceId(1), "deposit", &[Value::Int(5)]));
        assert!(!server.verify(&token, InterfaceId(2), "withdraw", &[Value::Int(5)]));
    }

    #[test]
    fn unknown_principal_rejected() {
        let server = SecretStore::new("server");
        let token = Token {
            principal: "mallory".into(),
            nonce: 1,
            tag: 42,
        };
        assert!(!server.verify(&token, InterfaceId(1), "op", &[]));
    }

    #[test]
    fn minting_without_secret_fails() {
        let alice = SecretStore::new("alice");
        assert!(alice.mint("server", InterfaceId(1), "op", &[]).is_none());
    }

    #[test]
    fn nonces_increase() {
        let alice = SecretStore::new("alice");
        let server = SecretStore::new("server");
        establish(&alice, &server, 7);
        let t1 = alice.mint("server", InterfaceId(1), "op", &[]).unwrap();
        let t2 = alice.mint("server", InterfaceId(1), "op", &[]).unwrap();
        assert!(t2.nonce > t1.nonce);
    }

    #[test]
    fn token_codec_round_trips() {
        let t = Token {
            principal: "alice".into(),
            nonce: 9,
            tag: 0xdead_beef,
        };
        assert_eq!(Token::decode(&t.encode()), Some(t));
        assert!(Token::decode(&Value::Int(1)).is_none());
    }
}
