//! # odp-security — guards and shared-secret authentication (§7.1)
//!
//! *"Security in a distributed system is founded upon trusted encapsulation
//! and the management of shared secrets between objects."* And, crucially
//! for the engineering model: *"an interface reference for accessing an
//! object cannot itself be secure … It is possible for any object to
//! assemble a reference, therefore a secure object must check that any
//! access is from a valid source. … For each interface of the object, a
//! guard can be generated to police use of that interface"* — generated
//! "automatically from a declarative statement of security policy".
//!
//! * [`siphash`] — a from-scratch SipHash-2-4 keyed PRF. The substitution
//!   table in DESIGN.md records why: the paper's claims are about *where*
//!   authentication sits in the access path and what it costs, not about
//!   cipher strength (SipHash-2-4 is a real MAC for short messages, though
//!   not a modern general-purpose one).
//! * [`secret`] — [`Secret`]s and the [`SecretStore`]: pairwise shared
//!   secrets between principals, plus token minting: a token binds
//!   `(principal, interface, operation, argument digest, nonce)` under the
//!   shared secret, giving authentication **and** argument integrity.
//! * [`guard`] — the generated mechanisms: [`AuthLayer`] (client side)
//!   stamps outgoing calls; [`Guard`] (server side, inside the
//!   encapsulation boundary, first in the dispatch chain) verifies the
//!   token, enforces the declarative [`SecurityPolicy`], and refuses
//!   replays via per-principal monotonic nonces. Rejections are the
//!   `__denied` engineering termination.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod guard;
pub mod secret;
pub mod siphash;

pub use guard::{AuthLayer, Guard, SecurityPolicy};
pub use secret::{Secret, SecretStore, Token};
