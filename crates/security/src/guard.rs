//! Generated guards and the client-side authentication layer.
//!
//! §7.1: *"For each interface of the object, a guard can be generated to
//! police use of that interface. The guard must be included within the
//! encapsulation boundary of the secure object"* — here, the guard is a
//! [`ServerLayer`] installed first in the export's dispatch chain, so no
//! operation reaches the servant without passing it. Its behaviour is
//! wholly determined by a declarative [`SecurityPolicy`]; applications
//! write no checking code.

use crate::secret::{SecretStore, Token, AUTH_KEY};
use odp_core::{
    terminations, CallCtx, CallRequest, ClientLayer, ClientNext, InvokeError, Outcome, ServerLayer,
    ServerNext,
};
use odp_wire::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A declarative statement of which principals may invoke which
/// operations. Default-deny: an unlisted `(principal, op)` is refused.
#[derive(Default, Clone)]
pub struct SecurityPolicy {
    /// `principal → allowed operations`; an empty op list means "all".
    rules: HashMap<String, Vec<String>>,
}

impl SecurityPolicy {
    /// Creates an empty (deny-everything) policy.
    #[must_use]
    pub fn deny_all() -> Self {
        Self::default()
    }

    /// Allows `principal` to invoke every operation.
    #[must_use]
    pub fn allow_all<S: Into<String>>(mut self, principal: S) -> Self {
        self.rules.insert(principal.into(), Vec::new());
        self
    }

    /// Allows `principal` to invoke exactly `ops`.
    #[must_use]
    pub fn allow<S: Into<String>>(mut self, principal: S, ops: &[&str]) -> Self {
        self.rules.insert(
            principal.into(),
            ops.iter().map(|s| (*s).to_owned()).collect(),
        );
        self
    }

    /// Whether the policy permits the invocation.
    #[must_use]
    pub fn permits(&self, principal: &str, op: &str) -> bool {
        match self.rules.get(principal) {
            Some(ops) => ops.is_empty() || ops.iter().any(|o| o == op),
            None => false,
        }
    }
}

impl fmt::Debug for SecurityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecurityPolicy")
            .field("principals", &self.rules.len())
            .finish()
    }
}

/// The generated per-interface guard (server side).
pub struct Guard {
    store: Arc<SecretStore>,
    policy: SecurityPolicy,
    /// Highest nonce seen per principal: replays are refused.
    seen: Mutex<HashMap<String, u64>>,
    /// Refused interactions (experiment accounting).
    pub denied: AtomicU64,
    /// Verified interactions.
    pub admitted: AtomicU64,
}

impl Guard {
    /// Generates a guard from the object's secret store and a declarative
    /// policy.
    #[must_use]
    pub fn generate(store: Arc<SecretStore>, policy: SecurityPolicy) -> Arc<Self> {
        Arc::new(Self {
            store,
            policy,
            seen: Mutex::new(HashMap::new()),
            denied: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        })
    }

    fn deny(&self, why: &str) -> Outcome {
        self.denied.fetch_add(1, Ordering::Relaxed);
        Outcome::engineering(terminations::DENIED, vec![Value::str(why)])
    }
}

impl ServerLayer for Guard {
    fn dispatch(
        &self,
        ctx: &CallCtx,
        op: &str,
        args: Vec<Value>,
        next: &dyn ServerNext,
    ) -> Outcome {
        let Some(token) = ctx.annotations.get(AUTH_KEY).and_then(Token::decode) else {
            return self.deny("no credentials presented");
        };
        if !self.policy.permits(&token.principal, op) {
            return self.deny("policy forbids this operation");
        }
        if !self.store.verify(&token, ctx.iface, op, &args) {
            return self.deny("invalid authentication tag");
        }
        {
            let mut seen = self.seen.lock();
            let last = seen.entry(token.principal.clone()).or_insert(0);
            if token.nonce <= *last {
                drop(seen);
                return self.deny("replayed credentials");
            }
            *last = token.nonce;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        next.dispatch(ctx, op, args)
    }

    fn name(&self) -> &'static str {
        "security:guard"
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("policy", &self.policy)
            .field("denied", &self.denied.load(Ordering::Relaxed))
            .finish()
    }
}

/// The client half: stamps outgoing invocations with a token minted from
/// the shared secret ("the client can impose its policy directly by
/// choosing which services to use: by sharing secrets with those
/// services", §7.1).
pub struct AuthLayer {
    store: Arc<SecretStore>,
    server_principal: String,
}

impl AuthLayer {
    /// Creates an authentication layer speaking for `store`'s principal
    /// towards `server_principal`.
    #[must_use]
    pub fn new<S: Into<String>>(store: Arc<SecretStore>, server_principal: S) -> Arc<Self> {
        Arc::new(Self {
            store,
            server_principal: server_principal.into(),
        })
    }
}

impl ClientLayer for AuthLayer {
    fn invoke(&self, mut req: CallRequest, next: &dyn ClientNext) -> Result<Outcome, InvokeError> {
        let token = self
            .store
            .mint(&self.server_principal, req.target.iface, &req.op, &req.args)
            .ok_or_else(|| {
                InvokeError::Denied(format!("no secret shared with `{}`", self.server_principal))
            })?;
        req.annotations.insert(AUTH_KEY.to_owned(), token.encode());
        next.invoke(req)
    }

    fn name(&self) -> &'static str {
        "security:auth"
    }
}

impl fmt::Debug for AuthLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuthLayer")
            .field("server", &self.server_principal)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_semantics() {
        let p = SecurityPolicy::deny_all()
            .allow("alice", &["read"])
            .allow_all("admin");
        assert!(p.permits("alice", "read"));
        assert!(!p.permits("alice", "write"));
        assert!(p.permits("admin", "anything"));
        assert!(!p.permits("mallory", "read"));
    }
}
