//! SipHash-2-4: a keyed pseudo-random function, implemented from scratch.
//!
//! Reference: Aumasson & Bernstein, *SipHash: a fast short-input PRF*
//! (2012). The implementation follows the paper's specification: 128-bit
//! key, 64-bit output, 2 compression rounds per message block and 4
//! finalization rounds.

/// A 128-bit SipHash key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// Low half of the key.
    pub k0: u64,
    /// High half of the key.
    pub k1: u64,
}

impl std::fmt::Debug for SipKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SipKey(…)")
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under `key`.
#[must_use]
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];
    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let mut last = [0u8; 8];
    let rem = chunks.remainder();
    last[..rem.len()].copy_from_slice(rem);
    last[7] = (len & 0xff) as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official test vector from the SipHash reference implementation:
    /// key = 00 01 02 … 0f, input = 00 01 02 … (first rows of the vector
    /// table in the reference `vectors.h`).
    #[test]
    fn reference_vectors() {
        let key = SipKey {
            k0: u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]),
            k1: u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]),
        };
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let data: Vec<u8> = (0u8..8).collect();
        for (n, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(key, &data[..n]),
                *want,
                "vector for {n}-byte input"
            );
        }
    }

    #[test]
    fn key_sensitivity() {
        let a = SipKey { k0: 1, k1: 2 };
        let b = SipKey { k0: 1, k1: 3 };
        assert_ne!(siphash24(a, b"message"), siphash24(b, b"message"));
    }

    #[test]
    fn message_sensitivity() {
        let key = SipKey { k0: 7, k1: 9 };
        assert_ne!(siphash24(key, b"message"), siphash24(key, b"messagf"));
        assert_ne!(siphash24(key, b""), siphash24(key, b"\0"));
    }

    #[test]
    fn debug_hides_key() {
        assert_eq!(format!("{:?}", SipKey { k0: 42, k1: 43 }), "SipKey(…)");
    }
}
