//! Integration tests: ACID transactions over distributed bank accounts.

use odp_core::{CallCtx, ExportConfig, Outcome, Servant, World};
use odp_tx::{SeparationConstraint, Txn, TxnError, TxnSystem};
use odp_types::signature::{InterfaceTypeBuilder, OutcomeSig};
use odp_types::{InterfaceType, TypeSpec};
use odp_wire::{InterfaceRef, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Account {
    balance: AtomicI64,
}

fn account_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("balance", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "deposit",
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .interrogation(
            "withdraw",
            vec![TypeSpec::Int],
            vec![
                OutcomeSig::ok(vec![TypeSpec::Int]),
                OutcomeSig::new("insufficient", vec![TypeSpec::Int]),
            ],
        )
        .build()
}

impl Account {
    fn with(balance: i64) -> Arc<Self> {
        Arc::new(Self {
            balance: AtomicI64::new(balance),
        })
    }
}

impl Servant for Account {
    fn interface_type(&self) -> InterfaceType {
        account_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "balance" => Outcome::ok(vec![Value::Int(self.balance.load(Ordering::SeqCst))]),
            "deposit" => {
                let n = args[0].as_int().unwrap_or(0);
                let new = self.balance.fetch_add(n, Ordering::SeqCst) + n;
                Outcome::ok(vec![Value::Int(new)])
            }
            "withdraw" => {
                let n = args[0].as_int().unwrap_or(0);
                let current = self.balance.load(Ordering::SeqCst);
                if current < n {
                    Outcome::new("insufficient", vec![Value::Int(current)])
                } else {
                    let new = self.balance.fetch_sub(n, Ordering::SeqCst) - n;
                    Outcome::ok(vec![Value::Int(new)])
                }
            }
            _ => Outcome::fail("no such op"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.balance.load(Ordering::SeqCst).to_be_bytes().to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
        self.balance
            .store(i64::from_be_bytes(arr), Ordering::SeqCst);
        Ok(())
    }
}

/// World with two accounts on two capsules, both transaction-managed, plus
/// a client capsule.
struct Bank {
    world: World,
    system: Arc<TxnSystem>,
    alice: InterfaceRef,
    bob: InterfaceRef,
    alice_servant: Arc<Account>,
    bob_servant: Arc<Account>,
}

fn bank() -> Bank {
    let world = World::builder().capsules(3).build();
    let system = TxnSystem::new();
    let rt0 = system.install_on_with(world.capsule(0), Duration::from_millis(500));
    let rt1 = system.install_on_with(world.capsule(1), Duration::from_millis(500));
    let alice_servant = Account::with(100);
    let bob_servant = Account::with(100);
    let alice = world.capsule(0).export_with(
        Arc::clone(&alice_servant) as Arc<dyn Servant>,
        ExportConfig {
            layers: vec![rt0.concurrency_layer(
                &(Arc::clone(&alice_servant) as Arc<dyn Servant>),
                SeparationConstraint::readers(&["balance"]),
            )],
            ..ExportConfig::default()
        },
    );
    let bob = world.capsule(1).export_with(
        Arc::clone(&bob_servant) as Arc<dyn Servant>,
        ExportConfig {
            layers: vec![rt1.concurrency_layer(
                &(Arc::clone(&bob_servant) as Arc<dyn Servant>),
                SeparationConstraint::readers(&["balance"]),
            )],
            ..ExportConfig::default()
        },
    );
    Bank {
        world,
        system,
        alice,
        bob,
        alice_servant,
        bob_servant,
    }
}

fn transfer(bank: &Bank, txn: &Txn, amount: i64) -> Result<bool, TxnError> {
    let client = bank.world.capsule(2);
    let alice = client.bind(bank.alice.clone());
    let bob = client.bind(bank.bob.clone());
    let out = txn.call(&alice, "withdraw", vec![Value::Int(amount)])?;
    if out.termination != "ok" {
        return Ok(false);
    }
    txn.call(&bob, "deposit", vec![Value::Int(amount)])?;
    Ok(true)
}

#[test]
fn committed_transfer_moves_money() {
    let b = bank();
    let txn = b.system.begin(b.world.capsule(2));
    assert!(transfer(&b, &txn, 30).unwrap());
    txn.commit().unwrap();
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 70);
    assert_eq!(b.bob_servant.balance.load(Ordering::SeqCst), 130);
}

#[test]
fn aborted_transfer_rolls_back_both_sides() {
    let b = bank();
    let txn = b.system.begin(b.world.capsule(2));
    assert!(transfer(&b, &txn, 30).unwrap());
    // Provisional state is applied at the servants…
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 70);
    txn.abort();
    // …and fully undone by the version store on abort.
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 100);
    assert_eq!(b.bob_servant.balance.load(Ordering::SeqCst), 100);
}

#[test]
fn dropping_a_transaction_aborts_it() {
    let b = bank();
    {
        let txn = b.system.begin(b.world.capsule(2));
        assert!(transfer(&b, &txn, 30).unwrap());
        // Dropped here without commit.
    }
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 100);
    assert_eq!(b.bob_servant.balance.load(Ordering::SeqCst), 100);
}

#[test]
fn isolation_writer_blocks_conflicting_writer() {
    let b = bank();
    let txn1 = b.system.begin(b.world.capsule(2));
    let client = b.world.capsule(2);
    let alice = client.bind(b.alice.clone());
    txn1.call(&alice, "withdraw", vec![Value::Int(10)]).unwrap();
    // A second transaction's write must wait and then time out (500 ms
    // lock bound) because txn1 holds the exclusive lock.
    let txn2 = b.system.begin(b.world.capsule(2));
    let err = txn2
        .call(&alice, "deposit", vec![Value::Int(5)])
        .unwrap_err();
    assert!(matches!(err, TxnError::Aborted(_)), "{err:?}");
    txn1.commit().unwrap();
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 90);
}

#[test]
fn deadlock_is_broken_not_hung() {
    let b = bank();
    let b = Arc::new(b);
    // txn1 locks alice then bob; txn2 locks bob then alice.
    let txn1 = b.system.begin(b.world.capsule(2));
    let txn2 = b.system.begin(b.world.capsule(2));
    let client = b.world.capsule(2);
    let alice = client.bind(b.alice.clone());
    let bob = client.bind(b.bob.clone());
    txn1.call(&alice, "withdraw", vec![Value::Int(1)]).unwrap();
    txn2.call(&bob, "withdraw", vec![Value::Int(1)]).unwrap();
    // Cross: both now request the other's lock. Locks live in *different*
    // lock managers (different capsules), so the local detector cannot see
    // the cycle — the bounded wait must break it.
    let b2 = Arc::clone(&b);
    let t = std::thread::spawn(move || {
        let client = b2.world.capsule(2);
        let bob = client.bind(b2.bob.clone());
        txn1.call(&bob, "deposit", vec![Value::Int(1)])
            .map(|_| txn1)
    });
    let r2 = txn2.call(&alice, "deposit", vec![Value::Int(1)]);
    let r1 = t.join().unwrap();
    // At least one of the two must have been aborted.
    let aborted = r1.is_err() as usize + r2.is_err() as usize;
    assert!(aborted >= 1, "deadlock went undetected");
    // Whatever survived can commit; money is conserved.
    if let Ok(txn1) = r1 {
        let _ = txn1.commit();
    }
    drop(r2);
    drop(txn2);
    std::thread::sleep(Duration::from_millis(50));
    let total = b.alice_servant.balance.load(Ordering::SeqCst)
        + b.bob_servant.balance.load(Ordering::SeqCst);
    assert_eq!(
        total, 200,
        "money created or destroyed by deadlock handling"
    );
}

#[test]
fn local_deadlock_detected_immediately() {
    // Two accounts on the SAME capsule share a lock manager: the wait-for
    // graph sees the cycle instantly.
    let world = World::builder().capsules(2).build();
    let system = TxnSystem::new();
    let rt = system.install_on_with(world.capsule(0), Duration::from_secs(10));
    let a = Account::with(100);
    let c = Account::with(100);
    let export = |servant: &Arc<Account>| {
        world.capsule(0).export_with(
            Arc::clone(servant) as Arc<dyn Servant>,
            ExportConfig {
                layers: vec![rt.concurrency_layer(
                    &(Arc::clone(servant) as Arc<dyn Servant>),
                    SeparationConstraint::exclusive_all(),
                )],
                ..ExportConfig::default()
            },
        )
    };
    let ra = export(&a);
    let rc = export(&c);
    let txn1 = system.begin(world.capsule(1));
    let txn2 = system.begin(world.capsule(1));
    let ba = world.capsule(1).bind(ra);
    let bc = world.capsule(1).bind(rc);
    txn1.call(&ba, "deposit", vec![Value::Int(1)]).unwrap();
    txn2.call(&bc, "deposit", vec![Value::Int(1)]).unwrap();
    let start = std::time::Instant::now();
    let world = Arc::new(world);
    let w2 = Arc::clone(&world);
    let bc2 = w2.capsule(1).bind(bc.target());
    let t = std::thread::spawn(move || txn1.call(&bc2, "deposit", vec![Value::Int(1)]).map(|_| ()));
    std::thread::sleep(Duration::from_millis(100));
    let r2 = txn2.call(&ba, "deposit", vec![Value::Int(1)]);
    // The second request closes the cycle in one lock manager: immediate
    // deadlock abort, far faster than the 10 s wait bound.
    assert!(matches!(r2, Err(TxnError::Aborted(_))), "{r2:?}");
    assert!(start.elapsed() < Duration::from_secs(5));
    drop(txn2);
    let _ = t.join().unwrap();
}

#[test]
fn ordering_predicate_vetoes_commit() {
    // Policy: a transaction may not withdraw twice from the same account.
    let world = World::builder().capsules(2).build();
    let system = TxnSystem::new();
    let rt = system.install_on(world.capsule(0));
    let acct = Account::with(100);
    let constraint = SeparationConstraint::readers(&["balance"]).with_ordering(Arc::new(|ops| {
        ops.iter().filter(|o| o.as_str() == "withdraw").count() <= 1
    }));
    let r =
        world.capsule(0).export_with(
            Arc::clone(&acct) as Arc<dyn Servant>,
            ExportConfig {
                layers: vec![
                    rt.concurrency_layer(&(Arc::clone(&acct) as Arc<dyn Servant>), constraint)
                ],
                ..ExportConfig::default()
            },
        );
    let binding = world.capsule(1).bind(r);
    let txn = system.begin(world.capsule(1));
    txn.call(&binding, "withdraw", vec![Value::Int(10)])
        .unwrap();
    txn.call(&binding, "withdraw", vec![Value::Int(10)])
        .unwrap();
    let err = txn.commit().unwrap_err();
    assert!(matches!(err, TxnError::VoteNo(_)), "{err:?}");
    // The veto aborted the transaction: state restored.
    assert_eq!(acct.balance.load(Ordering::SeqCst), 100);
}

#[test]
fn non_transactional_calls_serialize_via_autocommit() {
    let b = bank();
    let client = b.world.capsule(2);
    let alice = client.bind(b.alice.clone());
    for _ in 0..10 {
        alice.interrogate("deposit", vec![Value::Int(1)]).unwrap();
    }
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 110);
    // And they conflict correctly with real transactions.
    let txn = b.system.begin(b.world.capsule(2));
    txn.call(&alice, "withdraw", vec![Value::Int(5)]).unwrap();
    let err = alice
        .interrogate("deposit", vec![Value::Int(1)])
        .unwrap_err();
    assert!(matches!(err, odp_core::InvokeError::Aborted(_)), "{err:?}");
    txn.commit().unwrap();
    assert_eq!(b.alice_servant.balance.load(Ordering::SeqCst), 105);
}

#[test]
fn concurrent_transfers_conserve_money() {
    let b = Arc::new(bank());
    let total_before = 200;
    std::thread::scope(|s| {
        for i in 0..4i64 {
            let b = Arc::clone(&b);
            s.spawn(move || {
                for j in 0..5 {
                    let txn = b.system.begin(b.world.capsule(2));
                    let amount = 1 + (i + j) % 3;
                    match transfer(&b, &txn, amount) {
                        Ok(true) => {
                            let _ = txn.commit();
                        }
                        Ok(false) => txn.abort(),
                        Err(_) => { /* aborted by conflict: fine */ }
                    }
                }
            });
        }
    });
    // Whatever committed, money is conserved.
    std::thread::sleep(Duration::from_millis(100));
    let total = b.alice_servant.balance.load(Ordering::SeqCst)
        + b.bob_servant.balance.load(Ordering::SeqCst);
    assert_eq!(total, total_before);
}

#[test]
fn read_only_transactions_share_locks() {
    let b = bank();
    let client = b.world.capsule(2);
    let alice = client.bind(b.alice.clone());
    let txn1 = b.system.begin(b.world.capsule(2));
    let txn2 = b.system.begin(b.world.capsule(2));
    // Both read concurrently without conflict.
    assert!(txn1.call(&alice, "balance", vec![]).unwrap().is_ok());
    assert!(txn2.call(&alice, "balance", vec![]).unwrap().is_ok());
    txn1.commit().unwrap();
    txn2.commit().unwrap();
}
