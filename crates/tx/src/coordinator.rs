//! The transaction coordinator: begin / invoke-under / two-phase commit.
//!
//! Atomicity (§5.2): "ensuring that the effect of transactions is
//! all-or-nothing; this can be achieved by adding 'succeed' or 'fail'
//! attributes on terminations to select the desired effect of an operation
//! and retaining of versions of object state until the overall fate of a
//! transaction is decided." The coordinator decides that fate with a
//! classic presumed-abort two-phase commit over the participants'
//! transaction-control interfaces.

use crate::runtime::{control_ops, install};
use odp_core::{Capsule, ClientBinding, InvokeError, Outcome, TransparencyPolicy};
use odp_types::{NodeId, TxnId};
use odp_wire::{InterfaceRef, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors from transaction control.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// A participant voted no at prepare (e.g. an ordering predicate
    /// failed); the transaction was aborted.
    VoteNo(NodeId),
    /// A participant could not be reached during prepare; aborted.
    ParticipantUnreachable(NodeId, String),
    /// An invocation under the transaction was aborted by concurrency
    /// control (deadlock or lock timeout).
    Aborted(String),
    /// The transaction handle was already committed or aborted.
    Finished,
    /// An invocation failed at the engineering level.
    Invoke(InvokeError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::VoteNo(n) => write!(f, "participant {n} voted no"),
            TxnError::ParticipantUnreachable(n, why) => {
                write!(f, "participant {n} unreachable: {why}")
            }
            TxnError::Aborted(why) => write!(f, "aborted by concurrency control: {why}"),
            TxnError::Finished => write!(f, "transaction already finished"),
            TxnError::Invoke(e) => write!(f, "invocation failed: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// System-wide transaction facilities: issues transaction identifiers and
/// knows every capsule's control interface.
///
/// Installing the runtime on each participating capsule is engineering
/// configuration — the application only ever sees [`Txn`] handles.
pub struct TxnSystem {
    next_id: AtomicU64,
    controls: RwLock<HashMap<NodeId, InterfaceRef>>,
    runtimes: RwLock<HashMap<NodeId, Arc<crate::TxnRuntime>>>,
}

impl TxnSystem {
    /// Creates a transaction system.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            next_id: AtomicU64::new(1),
            controls: RwLock::new(HashMap::new()),
            runtimes: RwLock::new(HashMap::new()),
        })
    }

    /// Installs a transaction runtime on `capsule` (idempotent per node)
    /// and returns it for building concurrency layers.
    pub fn install_on(&self, capsule: &Arc<Capsule>) -> Arc<crate::TxnRuntime> {
        self.install_on_with(capsule, Duration::from_secs(2))
    }

    /// As [`TxnSystem::install_on`] with an explicit lock wait bound.
    pub fn install_on_with(
        &self,
        capsule: &Arc<Capsule>,
        lock_wait: Duration,
    ) -> Arc<crate::TxnRuntime> {
        if let Some(existing) = self.runtimes.read().get(&capsule.node()) {
            return Arc::clone(existing);
        }
        let (runtime, control) = install(capsule, lock_wait);
        self.controls.write().insert(capsule.node(), control);
        self.runtimes
            .write()
            .insert(capsule.node(), Arc::clone(&runtime));
        runtime
    }

    /// The runtime installed on `node`, if any.
    #[must_use]
    pub fn runtime_of(&self, node: NodeId) -> Option<Arc<crate::TxnRuntime>> {
        self.runtimes.read().get(&node).cloned()
    }

    /// Begins a transaction coordinated through `coordinator_capsule`.
    #[must_use]
    pub fn begin(self: &Arc<Self>, coordinator_capsule: &Arc<Capsule>) -> Txn {
        Txn {
            id: TxnId(self.next_id.fetch_add(1, Ordering::Relaxed)),
            system: Arc::clone(self),
            capsule: Arc::clone(coordinator_capsule),
            participants: Mutex::new(HashSet::new()),
            finished: Mutex::new(false),
        }
    }

    fn control_binding(
        &self,
        capsule: &Arc<Capsule>,
        node: NodeId,
    ) -> Result<ClientBinding, TxnError> {
        let control = self.controls.read().get(&node).cloned().ok_or_else(|| {
            TxnError::ParticipantUnreachable(node, "no control interface known".to_owned())
        })?;
        Ok(capsule.bind_with(control, TransparencyPolicy::default()))
    }
}

impl fmt::Debug for TxnSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnSystem")
            .field("participant_nodes", &self.controls.read().len())
            .finish()
    }
}

/// One transaction: invoke under it, then commit or abort.
///
/// Dropping an unfinished transaction aborts it (presumed abort).
pub struct Txn {
    id: TxnId,
    system: Arc<TxnSystem>,
    capsule: Arc<Capsule>,
    participants: Mutex<HashSet<NodeId>>,
    finished: Mutex<bool>,
}

impl Txn {
    /// This transaction's identifier.
    #[must_use]
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Invokes `op` on `binding` under this transaction: the dispatch runs
    /// inside the target's concurrency-control layer and its effects are
    /// provisional until commit.
    ///
    /// # Errors
    ///
    /// [`TxnError::Aborted`] if concurrency control killed the transaction
    /// (the abort has already been broadcast), or any engineering error.
    pub fn call(
        &self,
        binding: &ClientBinding,
        op: &str,
        args: Vec<Value>,
    ) -> Result<Outcome, TxnError> {
        if *self.finished.lock() {
            return Err(TxnError::Finished);
        }
        let mut annotations = std::collections::BTreeMap::new();
        annotations.insert(
            odp_core::CallCtx::TXN_KEY.to_owned(),
            Value::Int(self.id.raw() as i64),
        );
        match binding.interrogate_annotated(op, args, annotations) {
            Ok(outcome) => {
                self.participants.lock().insert(binding.target().home);
                Ok(outcome)
            }
            Err(InvokeError::Aborted(why)) => {
                // Concurrency control aborted us at the participant; make
                // it global.
                self.finish_abort();
                Err(TxnError::Aborted(why))
            }
            Err(e) => Err(TxnError::Invoke(e)),
        }
    }

    /// Two-phase commit: prepare every participant, then commit (or abort
    /// on any no-vote / unreachable participant).
    ///
    /// # Errors
    ///
    /// [`TxnError::VoteNo`] or [`TxnError::ParticipantUnreachable`]; in
    /// both cases the transaction has been aborted everywhere reachable.
    pub fn commit(self) -> Result<(), TxnError> {
        {
            let mut finished = self.finished.lock();
            if *finished {
                return Err(TxnError::Finished);
            }
            *finished = true;
        }
        let participants: Vec<NodeId> = self.participants.lock().iter().copied().collect();
        // Phase 1: prepare.
        for node in &participants {
            let vote = self
                .system
                .control_binding(&self.capsule, *node)
                .and_then(|b| {
                    b.interrogate(control_ops::PREPARE, vec![Value::Int(self.id.raw() as i64)])
                        .map_err(|e| TxnError::ParticipantUnreachable(*node, e.to_string()))
                });
            let yes = match vote {
                Ok(outcome) => outcome.result().and_then(Value::as_bool).unwrap_or(false),
                Err(e) => {
                    self.broadcast_abort(&participants);
                    return Err(e);
                }
            };
            if !yes {
                self.broadcast_abort(&participants);
                return Err(TxnError::VoteNo(*node));
            }
        }
        // Phase 2: commit.
        for node in &participants {
            if let Ok(b) = self.system.control_binding(&self.capsule, *node) {
                let _ = b.interrogate(control_ops::COMMIT, vec![Value::Int(self.id.raw() as i64)]);
            }
        }
        Ok(())
    }

    /// Aborts the transaction everywhere.
    pub fn abort(self) {
        self.finish_abort();
    }

    fn finish_abort(&self) {
        {
            let mut finished = self.finished.lock();
            if *finished {
                return;
            }
            *finished = true;
        }
        let participants: Vec<NodeId> = self.participants.lock().iter().copied().collect();
        self.broadcast_abort(&participants);
    }

    fn broadcast_abort(&self, participants: &[NodeId]) {
        for node in participants {
            if let Ok(b) = self.system.control_binding(&self.capsule, *node) {
                let _ = b.interrogate(control_ops::ABORT, vec![Value::Int(self.id.raw() as i64)]);
            }
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        self.finish_abort();
    }
}

impl fmt::Debug for Txn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("participants", &self.participants.lock().len())
            .finish()
    }
}
