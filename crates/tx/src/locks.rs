//! The lock manager: strict two-phase locking over string keys.
//!
//! Isolation (§5.2) "can be achieved by associating separation constraints
//! with interface specifications indicating which operation and argument
//! combinations potentially interfere". The generated concurrency-control
//! layer translates each dispatch into a lock request here; locks are held
//! until the transaction's fate is decided (strict 2PL), which gives
//! serializability and recoverability.
//!
//! Conflicting requests wait on a condition variable; before waiting, the
//! [`DeadlockDetector`] is consulted, and waits are also bounded by a
//! timeout so deadlocks spanning several lock managers (which no local
//! graph can see) resolve as aborts rather than hangs.

use crate::deadlock::DeadlockDetector;
use odp_types::TxnId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: readers coexist.
    Shared,
    /// Exclusive: sole access.
    Exclusive,
}

/// Why a lock could not be granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Granting the wait would deadlock; the requester must abort.
    Deadlock,
    /// The wait exceeded the manager's timeout (possible distributed
    /// deadlock); the requester must abort.
    Timeout,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "lock wait would deadlock"),
            LockError::Timeout => write!(f, "lock wait timed out"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Default)]
struct Entry {
    sharers: HashSet<TxnId>,
    exclusive: Option<TxnId>,
}

impl Entry {
    fn is_free_for(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self.exclusive.is_none() || self.exclusive == Some(txn),
            LockMode::Exclusive => {
                let sole_sharer = self.sharers.is_empty()
                    || (self.sharers.len() == 1 && self.sharers.contains(&txn));
                (self.exclusive.is_none() || self.exclusive == Some(txn)) && sole_sharer
            }
        }
    }

    fn holders_blocking(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        if let Some(x) = self.exclusive {
            if x != txn {
                out.push(x);
            }
        }
        if mode == LockMode::Exclusive {
            out.extend(self.sharers.iter().copied().filter(|t| *t != txn));
        }
        out
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                self.sharers.insert(txn);
            }
            LockMode::Exclusive => {
                self.sharers.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.sharers.is_empty() && self.exclusive.is_none()
    }
}

/// A strict-2PL lock manager. One per capsule's transaction runtime; all
/// concurrency-control layers on that capsule share it (a transaction
/// touching several interfaces holds one coherent lock set).
pub struct LockManager {
    table: Mutex<HashMap<String, Entry>>,
    changed: Condvar,
    detector: DeadlockDetector,
    wait_timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(Duration::from_secs(2))
    }
}

impl LockManager {
    /// Creates a lock manager with the given wait timeout.
    #[must_use]
    pub fn new(wait_timeout: Duration) -> Self {
        Self {
            table: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            detector: DeadlockDetector::new(),
            wait_timeout,
        }
    }

    /// The deadlock detector (shared with diagnostics).
    #[must_use]
    pub fn detector(&self) -> &DeadlockDetector {
        &self.detector
    }

    /// Acquires `key` in `mode` for `txn`, blocking if necessary.
    ///
    /// # Errors
    ///
    /// [`LockError::Deadlock`] if waiting would close a wait-for cycle,
    /// [`LockError::Timeout`] if the wait exceeds the manager's bound.
    pub fn acquire(&self, txn: TxnId, key: &str, mode: LockMode) -> Result<(), LockError> {
        let deadline = Instant::now() + self.wait_timeout;
        let mut table = self.table.lock();
        loop {
            let entry = table.entry(key.to_owned()).or_default();
            if entry.is_free_for(txn, mode) {
                entry.grant(txn, mode);
                self.detector.clear_waits(txn);
                return Ok(());
            }
            let holders = entry.holders_blocking(txn, mode);
            if !self.detector.try_wait(txn, &holders) {
                return Err(LockError::Deadlock);
            }
            let now = Instant::now();
            if now >= deadline {
                self.detector.clear_waits(txn);
                return Err(LockError::Timeout);
            }
            let timed_out = self.changed.wait_until(&mut table, deadline).timed_out();
            self.detector.clear_waits(txn);
            if timed_out {
                return Err(LockError::Timeout);
            }
        }
    }

    /// Releases every lock held by `txn` (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        table.retain(|_, entry| {
            entry.sharers.remove(&txn);
            if entry.exclusive == Some(txn) {
                entry.exclusive = None;
            }
            !entry.is_empty()
        });
        self.detector.remove(txn);
        self.changed.notify_all();
    }

    /// Number of keys with at least one holder.
    #[must_use]
    pub fn locked_keys(&self) -> usize {
        self.table.lock().len()
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("locked_keys", &self.locked_keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), "k", LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), "k", LockMode::Shared).unwrap();
        assert_eq!(lm.locked_keys(), 1);
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        assert_eq!(lm.locked_keys(), 0);
    }

    #[test]
    fn exclusive_excludes_and_waits() {
        let lm = Arc::new(LockManager::default());
        lm.acquire(TxnId(1), "k", LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.acquire(TxnId(2), "k", LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "waiter should block");
        lm.release_all(TxnId(1));
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), "k", LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), "k", LockMode::Shared).unwrap();
        // Sole sharer upgrades.
        lm.acquire(TxnId(1), "k", LockMode::Exclusive).unwrap();
        // And exclusive re-grants shared trivially.
        lm.acquire(TxnId(1), "k", LockMode::Shared).unwrap();
    }

    #[test]
    fn deadlock_detected_immediately() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(TxnId(1), "a", LockMode::Exclusive).unwrap();
        lm.acquire(TxnId(2), "b", LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || lm2.acquire(TxnId(1), "b", LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        // Txn 2 requesting `a` would close the cycle: immediate error, no
        // waiting out the 5 s timeout.
        let start = Instant::now();
        assert_eq!(
            lm.acquire(TxnId(2), "a", LockMode::Exclusive),
            Err(LockError::Deadlock)
        );
        assert!(start.elapsed() < Duration::from_secs(1));
        lm.release_all(TxnId(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn wait_times_out() {
        let lm = LockManager::new(Duration::from_millis(80));
        lm.acquire(TxnId(1), "k", LockMode::Exclusive).unwrap();
        let start = Instant::now();
        assert_eq!(
            lm.acquire(TxnId(2), "k", LockMode::Shared),
            Err(LockError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(70));
    }

    #[test]
    fn release_wakes_shared_waiters() {
        let lm = Arc::new(LockManager::default());
        lm.acquire(TxnId(1), "k", LockMode::Exclusive).unwrap();
        let mut handles = Vec::new();
        for t in 2..5u64 {
            let lm = Arc::clone(&lm);
            handles.push(std::thread::spawn(move || {
                lm.acquire(TxnId(t), "k", LockMode::Shared)
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }
}
