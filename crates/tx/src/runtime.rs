//! The per-capsule transaction runtime: generated concurrency-control
//! layers, the version store, and the transaction control servant.
//!
//! §5.2's pipeline, realized:
//!
//! declarative [`SeparationConstraint`] → [`TxnRuntime::concurrency_layer`]
//! → a [`ServerLayer`] installed in the export's dispatch path → lock
//! acquisition + state versioning on every transactional dispatch →
//! prepare/commit/abort driven remotely through the [`control servant`]
//! (`control_interface_type`).

use crate::locks::{LockError, LockManager, LockMode};
use odp_core::{terminations, CallCtx, Capsule, Outcome, Servant, ServerLayer, ServerNext};
use odp_types::signature::{InterfaceTypeBuilder, OutcomeSig};
use odp_types::{InterfaceId, InterfaceType, TxnId, TypeSpec};
use odp_wire::{InterfaceRef, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What one operation does to its object: the lock mode and the key it
/// touches. Produced by a [`SeparationConstraint`] classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Shared for pure observers, exclusive for mutators.
    pub mode: LockMode,
    /// Lock key within the interface (use `""` for whole-object locking;
    /// argument-derived keys give finer separation, e.g. one key per
    /// account number).
    pub key: String,
}

impl Access {
    /// Whole-object read access.
    #[must_use]
    pub fn read() -> Self {
        Self {
            mode: LockMode::Shared,
            key: String::new(),
        }
    }

    /// Whole-object write access.
    #[must_use]
    pub fn write() -> Self {
        Self {
            mode: LockMode::Exclusive,
            key: String::new(),
        }
    }

    /// Keyed read access.
    #[must_use]
    pub fn read_key<S: Into<String>>(key: S) -> Self {
        Self {
            mode: LockMode::Shared,
            key: key.into(),
        }
    }

    /// Keyed write access.
    #[must_use]
    pub fn write_key<S: Into<String>>(key: S) -> Self {
        Self {
            mode: LockMode::Exclusive,
            key: key.into(),
        }
    }
}

/// Classifier mapping `(operation, args)` to the [`Access`] it needs.
pub type ClassifyFn = Arc<dyn Fn(&str, &[Value]) -> Access + Send + Sync>;

/// Predicate over the sequence of operations one transaction performed on
/// an interface; `false` at prepare time vetoes the commit.
pub type OrderingPredicate = Arc<dyn Fn(&[String]) -> bool + Send + Sync>;

/// The declarative separation constraint of §5.2: "indicating which
/// operation and argument combinations potentially interfere", plus an
/// optional ordering predicate over the sequence of operations one
/// transaction performs on the interface ("the predicate describes the
/// permitted sequences of invocations within a transaction").
#[derive(Clone)]
pub struct SeparationConstraint {
    /// Classifies `(operation, args)` into an [`Access`].
    pub classify: ClassifyFn,
    /// Validated at prepare time against the transaction's operation
    /// sequence on this interface; `false` vetoes the commit.
    pub ordering: Option<OrderingPredicate>,
}

impl SeparationConstraint {
    /// Conservative default: every operation takes the whole-object
    /// exclusive lock.
    #[must_use]
    pub fn exclusive_all() -> Self {
        Self {
            classify: Arc::new(|_op, _args| Access::write()),
            ordering: None,
        }
    }

    /// Classifies by listing the read-only operations; everything else is
    /// a whole-object write.
    #[must_use]
    pub fn readers(read_ops: &[&str]) -> Self {
        let read_ops: Vec<String> = read_ops.iter().map(|s| (*s).to_owned()).collect();
        Self {
            classify: Arc::new(move |op, _args| {
                if read_ops.iter().any(|r| r == op) {
                    Access::read()
                } else {
                    Access::write()
                }
            }),
            ordering: None,
        }
    }

    /// Adds an ordering predicate.
    #[must_use]
    pub fn with_ordering(mut self, pred: OrderingPredicate) -> Self {
        self.ordering = Some(pred);
        self
    }
}

impl fmt::Debug for SeparationConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeparationConstraint")
            .field("ordering", &self.ordering.is_some())
            .finish()
    }
}

/// Per-transaction state on one capsule.
#[derive(Default)]
struct TxnResources {
    /// Undo snapshots: `(servant, pre-state)`, restored in reverse on
    /// abort. One per interface the transaction wrote.
    undo: Vec<(Arc<dyn Servant>, Vec<u8>)>,
    /// Interfaces already snapshotted (avoid double-snapshot).
    snapshotted: Vec<InterfaceId>,
    /// Operation log per interface, for ordering predicates.
    oplog: HashMap<InterfaceId, Vec<String>>,
    /// Ordering predicates to check at prepare.
    ordering: HashMap<InterfaceId, OrderingPredicate>,
    prepared: bool,
}

/// The per-capsule transaction runtime. All concurrency-control layers on
/// a capsule share one runtime (and thus one lock space).
pub struct TxnRuntime {
    locks: LockManager,
    resources: Mutex<HashMap<TxnId, TxnResources>>,
    auto_ids: AtomicU64,
    /// Transactions aborted by deadlock/timeout here (experiments).
    pub conflicts: AtomicU64,
}

impl TxnRuntime {
    /// Creates a runtime with the given lock wait bound.
    #[must_use]
    pub fn new(lock_wait: Duration) -> Arc<Self> {
        Arc::new(Self {
            locks: LockManager::new(lock_wait),
            resources: Mutex::new(HashMap::new()),
            // Auto-commit ids come from the top of the space to avoid
            // colliding with coordinator-issued ids.
            auto_ids: AtomicU64::new(u64::MAX / 2),
            conflicts: AtomicU64::new(0),
        })
    }

    /// The lock manager (diagnostics, tests).
    #[must_use]
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Generates the concurrency-control layer for `servant` from a
    /// declarative constraint (§5.2). Install the returned layer in the
    /// servant's [`odp_core::ExportConfig::layers`].
    #[must_use]
    pub fn concurrency_layer(
        self: &Arc<Self>,
        servant: &Arc<dyn Servant>,
        constraint: SeparationConstraint,
    ) -> Arc<dyn ServerLayer> {
        Arc::new(ConcurrencyControl {
            runtime: Arc::clone(self),
            servant: Arc::clone(servant),
            constraint,
        })
    }

    /// Prepare phase: validate ordering predicates. Returns the vote.
    #[must_use]
    pub fn prepare(&self, txn: TxnId) -> bool {
        let mut resources = self.resources.lock();
        let Some(res) = resources.get_mut(&txn) else {
            // Nothing done here: trivially prepared.
            return true;
        };
        for (iface, pred) in &res.ordering {
            let log = res.oplog.get(iface).cloned().unwrap_or_default();
            if !pred(&log) {
                return false;
            }
        }
        res.prepared = true;
        true
    }

    /// Commit: discard undo state and release locks.
    pub fn commit(&self, txn: TxnId) {
        self.resources.lock().remove(&txn);
        self.locks.release_all(txn);
    }

    /// Abort: restore undo snapshots in reverse order, release locks.
    pub fn abort(&self, txn: TxnId) {
        let res = self.resources.lock().remove(&txn);
        if let Some(res) = res {
            for (servant, snapshot) in res.undo.into_iter().rev() {
                let _ = servant.restore(&snapshot);
            }
        }
        self.locks.release_all(txn);
    }

    /// True if the runtime currently tracks `txn`.
    #[must_use]
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.resources.lock().contains_key(&txn)
    }
}

impl fmt::Debug for TxnRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnRuntime")
            .field("active", &self.resources.lock().len())
            .finish()
    }
}

/// The generated concurrency-control manager (a server layer).
struct ConcurrencyControl {
    runtime: Arc<TxnRuntime>,
    servant: Arc<dyn Servant>,
    constraint: SeparationConstraint,
}

impl ConcurrencyControl {
    fn locked_dispatch(
        &self,
        txn: TxnId,
        ctx: &CallCtx,
        op: &str,
        args: Vec<Value>,
        next: &dyn ServerNext,
    ) -> Result<Outcome, LockError> {
        let access = (self.constraint.classify)(op, &args);
        let lock_key = format!("{}/{}", ctx.iface.raw(), access.key);
        self.runtime.locks.acquire(txn, &lock_key, access.mode)?;
        {
            let mut resources = self.runtime.resources.lock();
            let res = resources.entry(txn).or_default();
            if access.mode == LockMode::Exclusive && !res.snapshotted.contains(&ctx.iface) {
                if let Some(snapshot) = self.servant.snapshot() {
                    res.undo.push((Arc::clone(&self.servant), snapshot));
                }
                res.snapshotted.push(ctx.iface);
            }
            res.oplog.entry(ctx.iface).or_default().push(op.to_owned());
            if let Some(pred) = &self.constraint.ordering {
                res.ordering
                    .entry(ctx.iface)
                    .or_insert_with(|| Arc::clone(pred));
            }
        }
        Ok(next.dispatch(ctx, op, args))
    }
}

impl ServerLayer for ConcurrencyControl {
    fn dispatch(
        &self,
        ctx: &CallCtx,
        op: &str,
        args: Vec<Value>,
        next: &dyn ServerNext,
    ) -> Outcome {
        match ctx.txn() {
            Some(txn) => match self.locked_dispatch(txn, ctx, op, args, next) {
                Ok(outcome) => outcome,
                Err(e) => {
                    // The lock wait failed: the transaction must abort. Undo
                    // any local effects now so the coordinator's abort is a
                    // no-op here.
                    self.runtime.conflicts.fetch_add(1, Ordering::Relaxed);
                    self.runtime.abort(txn);
                    Outcome::engineering(terminations::ABORTED, vec![Value::str(e.to_string())])
                }
            },
            None => {
                // Non-transactional invocation: auto-commit transaction so
                // it still serializes against real transactions.
                let txn = TxnId(self.runtime.auto_ids.fetch_add(1, Ordering::Relaxed));
                match self.locked_dispatch(txn, ctx, op, args, next) {
                    Ok(outcome) => {
                        self.runtime.commit(txn);
                        outcome
                    }
                    Err(e) => {
                        self.runtime.conflicts.fetch_add(1, Ordering::Relaxed);
                        self.runtime.abort(txn);
                        Outcome::engineering(terminations::ABORTED, vec![Value::str(e.to_string())])
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "concurrency:2pl"
    }
}

/// Operation names of the transaction control interface.
pub mod control_ops {
    /// `prepare(txn) -> ok(vote)`.
    pub const PREPARE: &str = "__txn_prepare";
    /// `commit(txn) -> ok`.
    pub const COMMIT: &str = "__txn_commit";
    /// `abort(txn) -> ok`.
    pub const ABORT: &str = "__txn_abort";
}

/// Signature of the per-capsule transaction control interface.
#[must_use]
pub fn control_interface_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation(
            control_ops::PREPARE,
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Bool])],
        )
        .interrogation(
            control_ops::COMMIT,
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![])],
        )
        .interrogation(
            control_ops::ABORT,
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![])],
        )
        .build()
}

/// The control servant: lets a remote coordinator drive this capsule's
/// prepare/commit/abort (the participant side of two-phase commit).
pub struct TxnControl {
    runtime: Arc<TxnRuntime>,
}

impl TxnControl {
    /// Wraps a runtime.
    #[must_use]
    pub fn new(runtime: Arc<TxnRuntime>) -> Self {
        Self { runtime }
    }
}

impl Servant for TxnControl {
    fn interface_type(&self) -> InterfaceType {
        control_interface_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        let Some(txn) = args.first().and_then(Value::as_int) else {
            return Outcome::fail("control operations require a txn id");
        };
        let txn = TxnId(txn as u64);
        match op {
            control_ops::PREPARE => Outcome::ok(vec![Value::Bool(self.runtime.prepare(txn))]),
            control_ops::COMMIT => {
                self.runtime.commit(txn);
                Outcome::ok(vec![])
            }
            control_ops::ABORT => {
                self.runtime.abort(txn);
                Outcome::ok(vec![])
            }
            _ => Outcome::fail("unknown operation"),
        }
    }
}

impl fmt::Debug for TxnControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnControl").finish()
    }
}

/// Installs a transaction runtime on a capsule: exports the control
/// servant and returns `(runtime, control reference)`.
#[must_use]
pub fn install(capsule: &Arc<Capsule>, lock_wait: Duration) -> (Arc<TxnRuntime>, InterfaceRef) {
    let runtime = TxnRuntime::new(lock_wait);
    let control = capsule.export(Arc::new(TxnControl::new(Arc::clone(&runtime))));
    (runtime, control)
}
