//! The deadlock detector: a wait-for graph with cycle checking.
//!
//! §5.2: the concurrency control manager "will need to interact with a
//! deadlock detector so that applications do not hang indefinitely if
//! transactions suffer locking conflicts". The detector is consulted
//! *before* a transaction starts waiting: if adding the wait edges would
//! close a cycle, the request is refused and the requester aborts — no
//! transaction ever enters a deadlocked wait.

use odp_types::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// A wait-for graph over transactions.
#[derive(Debug, Default)]
pub struct DeadlockDetector {
    edges: Mutex<HashMap<TxnId, HashSet<TxnId>>>,
}

impl DeadlockDetector {
    /// Creates an empty detector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to record that `waiter` waits for each of `holders`.
    /// Returns `false` — and records nothing — if doing so would create a
    /// cycle (i.e. the wait would deadlock).
    #[must_use]
    pub fn try_wait(&self, waiter: TxnId, holders: &[TxnId]) -> bool {
        let mut edges = self.edges.lock();
        // Would any holder (transitively) wait for `waiter`?
        for holder in holders {
            if *holder == waiter || Self::reaches(&edges, *holder, waiter) {
                return false;
            }
        }
        edges
            .entry(waiter)
            .or_default()
            .extend(holders.iter().copied());
        true
    }

    /// Removes all wait edges out of `waiter` (its wait ended).
    pub fn clear_waits(&self, waiter: TxnId) {
        self.edges.lock().remove(&waiter);
    }

    /// Removes a transaction entirely (it committed or aborted): both its
    /// out-edges and any in-edges pointing at it.
    pub fn remove(&self, txn: TxnId) {
        let mut edges = self.edges.lock();
        edges.remove(&txn);
        for targets in edges.values_mut() {
            targets.remove(&txn);
        }
    }

    /// Depth-first reachability: does `from` transitively wait for `to`?
    fn reaches(edges: &HashMap<TxnId, HashSet<TxnId>>, from: TxnId, to: TxnId) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = edges.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of transactions currently waiting.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.edges.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_cycle_refused() {
        let d = DeadlockDetector::new();
        assert!(d.try_wait(TxnId(1), &[TxnId(2)]));
        // 2 waiting for 1 would close the cycle.
        assert!(!d.try_wait(TxnId(2), &[TxnId(1)]));
    }

    #[test]
    fn self_wait_refused() {
        let d = DeadlockDetector::new();
        assert!(!d.try_wait(TxnId(1), &[TxnId(1)]));
    }

    #[test]
    fn long_cycle_refused() {
        let d = DeadlockDetector::new();
        assert!(d.try_wait(TxnId(1), &[TxnId(2)]));
        assert!(d.try_wait(TxnId(2), &[TxnId(3)]));
        assert!(d.try_wait(TxnId(3), &[TxnId(4)]));
        assert!(!d.try_wait(TxnId(4), &[TxnId(1)]));
        // A non-cyclic wait is still fine.
        assert!(d.try_wait(TxnId(4), &[TxnId(5)]));
    }

    #[test]
    fn clearing_waits_unblocks() {
        let d = DeadlockDetector::new();
        assert!(d.try_wait(TxnId(1), &[TxnId(2)]));
        d.clear_waits(TxnId(1));
        assert!(d.try_wait(TxnId(2), &[TxnId(1)]));
    }

    #[test]
    fn remove_erases_in_and_out_edges() {
        let d = DeadlockDetector::new();
        assert!(d.try_wait(TxnId(1), &[TxnId(2)]));
        assert!(d.try_wait(TxnId(3), &[TxnId(1)]));
        d.remove(TxnId(1));
        // 2 may now wait for 3 and 3's old edge to 1 is gone.
        assert!(d.try_wait(TxnId(2), &[TxnId(3)]));
        assert_eq!(d.waiting(), 2);
    }

    #[test]
    fn multi_holder_waits() {
        let d = DeadlockDetector::new();
        assert!(d.try_wait(TxnId(1), &[TxnId(2), TxnId(3)]));
        // 3 → 1 would cycle through the multi-edge.
        assert!(!d.try_wait(TxnId(3), &[TxnId(1)]));
    }
}
