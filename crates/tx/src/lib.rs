//! # odp-tx — concurrency transparency: ACID transactions (§5.2)
//!
//! *"To mask the effects of overlapped execution it is necessary to augment
//! the interaction model with the so-called 'ACID' properties, so that
//! sequences of interactions can be treated as 'transactions'."*
//!
//! The paper's architecture maps onto the crate like this:
//!
//! * **"Separation constraints can be interpreted to automatically generate
//!   a concurrency control manager which governs access to the ADT
//!   interface being made atomic"** — a declarative
//!   [`SeparationConstraint`] (which operations read, which write, over
//!   which keys) is compiled by [`TxnRuntime::concurrency_layer`] into a
//!   [`odp_core::ServerLayer`] installed at export time. Applications never
//!   call lock primitives.
//! * **"The concurrency control manager will also control the version
//!   store for holding the intermediate results of transactions"** — the
//!   generated layer snapshots an object's state (via
//!   [`odp_core::Servant::snapshot`]) before a transaction's first write
//!   and restores it on abort ([`runtime`]).
//! * **"Additionally it will need to interact with a deadlock detector so
//!   that applications do not hang indefinitely"** — the [`locks`] manager
//!   maintains a wait-for graph ([`deadlock`]); a lock request that would
//!   close a cycle aborts immediately, and a bounded lock wait handles
//!   distributed deadlocks that no single node can see.
//! * **Atomicity** ("all-or-nothing") across capsules uses two-phase commit
//!   ([`coordinator`]): each participating capsule exports a transaction
//!   control interface; the coordinator drives prepare/commit/abort over
//!   ordinary ODP invocations. Ordering predicates ("consistency — …
//!   ordering predicates with interfaces, where the predicate describes the
//!   permitted sequences of invocations within a transaction") are checked
//!   at prepare time and veto the commit.
//!
//! Durability is the province of `odp-storage` (checkpoints + logs); the
//! integration point is the same snapshot interface.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod deadlock;
pub mod locks;
pub mod runtime;

pub use coordinator::{Txn, TxnError, TxnSystem};
pub use deadlock::DeadlockDetector;
pub use locks::{LockError, LockManager, LockMode};
pub use runtime::{Access, SeparationConstraint, TxnRuntime};
