//! Structural signature conformance ("signature checking").
//!
//! §5.1 of the paper: *"For access to be type-safe, there must be prior
//! agreement that the client activity is requesting an operation provided by
//! the server interface. This places a requirement for type checking to be
//! based on interface signature checking: if the interface type includes the
//! operations required by the client (with appropriate arguments and
//! outcomes) it is suitable."*
//!
//! The rules implemented here form a standard structural-subtyping relation
//! `provided ⊑ required`:
//!
//! * the provided interface must contain **every operation** of the required
//!   interface, matched by name and kind (extra operations are fine — this
//!   is what lets services evolve without breaking old clients);
//! * **parameters are contravariant**: the provided operation must accept at
//!   least the values a client of the required signature may send;
//! * **outcomes are covariant with containment reversed**: every termination
//!   the provider may return must be one the client declared it can handle,
//!   and each result the provider sends must conform to the type the client
//!   expects.
//!
//! Failures are reported with a *path* so that tooling (the trader, the
//! binder, the federation translator) can explain exactly which operation,
//! parameter or outcome failed — self-description is what makes federated
//! systems debuggable.

use crate::signature::{InterfaceType, OperationKind, TypeSpec};
use std::fmt;

/// Why one signature fails to conform to another.
#[derive(Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The required operation is absent from the provided interface.
    MissingOperation {
        /// Name of the missing operation.
        operation: String,
    },
    /// The operation exists but is an announcement where an interrogation
    /// was required, or vice versa.
    KindMismatch {
        /// Operation whose kind differs.
        operation: String,
        /// Kind in the required signature.
        required: OperationKind,
        /// Kind in the provided signature.
        provided: OperationKind,
    },
    /// Parameter lists have different lengths.
    ParamCountMismatch {
        /// Operation at fault.
        operation: String,
        /// Required parameter count.
        required: usize,
        /// Provided parameter count.
        provided: usize,
    },
    /// A parameter type does not conform (contravariant check failed).
    ParamMismatch {
        /// Operation at fault.
        operation: String,
        /// Zero-based parameter index.
        index: usize,
        /// Human-readable description of the two specs.
        detail: String,
    },
    /// The provider declares a termination the client did not list.
    UnexpectedOutcome {
        /// Operation at fault.
        operation: String,
        /// Name of the surplus termination.
        outcome: String,
    },
    /// An outcome's result package does not conform (covariant check
    /// failed) or has the wrong arity.
    OutcomeMismatch {
        /// Operation at fault.
        operation: String,
        /// Termination at fault.
        outcome: String,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Debug for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::MissingOperation { operation } => {
                write!(f, "missing operation `{operation}`")
            }
            ConformanceError::KindMismatch {
                operation,
                required,
                provided,
            } => write!(
                f,
                "operation `{operation}` is {provided:?} but {required:?} required"
            ),
            ConformanceError::ParamCountMismatch {
                operation,
                required,
                provided,
            } => write!(
                f,
                "operation `{operation}` takes {provided} params, {required} required"
            ),
            ConformanceError::ParamMismatch {
                operation,
                index,
                detail,
            } => write!(f, "operation `{operation}` param {index}: {detail}"),
            ConformanceError::UnexpectedOutcome { operation, outcome } => write!(
                f,
                "operation `{operation}` may terminate with `{outcome}` which the client does not handle"
            ),
            ConformanceError::OutcomeMismatch {
                operation,
                outcome,
                detail,
            } => write!(f, "operation `{operation}` outcome `{outcome}`: {detail}"),
        }
    }
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for ConformanceError {}

/// Checks whether `provided ⊑ required`: a server exporting `provided` can
/// safely serve a client programmed against `required`.
///
/// # Errors
///
/// Returns the first [`ConformanceError`] found, in operation-name order.
pub fn conforms(
    provided: &InterfaceType,
    required: &InterfaceType,
) -> Result<(), ConformanceError> {
    for req_op in required.operations() {
        let prov_op =
            provided
                .operation(&req_op.name)
                .ok_or_else(|| ConformanceError::MissingOperation {
                    operation: req_op.name.clone(),
                })?;
        if prov_op.kind != req_op.kind {
            return Err(ConformanceError::KindMismatch {
                operation: req_op.name.clone(),
                required: req_op.kind,
                provided: prov_op.kind,
            });
        }
        if prov_op.params.len() != req_op.params.len() {
            return Err(ConformanceError::ParamCountMismatch {
                operation: req_op.name.clone(),
                required: req_op.params.len(),
                provided: prov_op.params.len(),
            });
        }
        // Contravariance: anything a `required`-typed client sends must be
        // acceptable to the provider.
        for (i, (req_p, prov_p)) in req_op.params.iter().zip(&prov_op.params).enumerate() {
            if !spec_conforms(req_p, prov_p) {
                return Err(ConformanceError::ParamMismatch {
                    operation: req_op.name.clone(),
                    index: i,
                    detail: format!("client sends {req_p:?}, provider accepts {prov_p:?}"),
                });
            }
        }
        // Every termination the provider may produce must be handled by the
        // client, with covariant result packages.
        for prov_out in &prov_op.outcomes {
            let req_out = req_op.outcome(&prov_out.name).ok_or_else(|| {
                ConformanceError::UnexpectedOutcome {
                    operation: req_op.name.clone(),
                    outcome: prov_out.name.clone(),
                }
            })?;
            if prov_out.results.len() != req_out.results.len() {
                return Err(ConformanceError::OutcomeMismatch {
                    operation: req_op.name.clone(),
                    outcome: prov_out.name.clone(),
                    detail: format!(
                        "provider returns {} results, client expects {}",
                        prov_out.results.len(),
                        req_out.results.len()
                    ),
                });
            }
            for (i, (prov_r, req_r)) in prov_out.results.iter().zip(&req_out.results).enumerate() {
                if !spec_conforms(prov_r, req_r) {
                    return Err(ConformanceError::OutcomeMismatch {
                        operation: req_op.name.clone(),
                        outcome: prov_out.name.clone(),
                        detail: format!(
                            "result {i}: provider sends {prov_r:?}, client expects {req_r:?}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Value-level spec conformance: can a value described by `value_spec` be
/// used where `expected` is declared?
///
/// `Any` accepts everything; interface positions recurse into signature
/// conformance (width and depth subtyping); sequences are covariant; records
/// use width subtyping (extra fields in the value are permitted — a
/// federated peer may know more about a record than we do).
#[must_use]
pub fn spec_conforms(value_spec: &TypeSpec, expected: &TypeSpec) -> bool {
    match (value_spec, expected) {
        (_, TypeSpec::Any) => true,
        (TypeSpec::Unit, TypeSpec::Unit)
        | (TypeSpec::Bool, TypeSpec::Bool)
        | (TypeSpec::Int, TypeSpec::Int)
        | (TypeSpec::Float, TypeSpec::Float)
        | (TypeSpec::Str, TypeSpec::Str)
        | (TypeSpec::Bytes, TypeSpec::Bytes) => true,
        (TypeSpec::Seq(v), TypeSpec::Seq(e)) => spec_conforms(v, e),
        (TypeSpec::Record(vf), TypeSpec::Record(ef)) => ef.iter().all(|(name, ety)| {
            vf.iter()
                .any(|(vname, vty)| vname == name && spec_conforms(vty, ety))
        }),
        (TypeSpec::Interface(v), TypeSpec::Interface(e)) => conforms(v, e).is_ok(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{InterfaceTypeBuilder, OutcomeSig};

    fn iface(ops: &[(&str, Vec<TypeSpec>, Vec<OutcomeSig>)]) -> InterfaceType {
        let mut b = InterfaceTypeBuilder::new();
        for (name, params, outs) in ops {
            b = b.interrogation(*name, params.clone(), outs.clone());
        }
        b.build()
    }

    #[test]
    fn reflexive() {
        let t = iface(&[(
            "f",
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Str])],
        )]);
        assert!(conforms(&t, &t).is_ok());
    }

    #[test]
    fn width_subtyping_extra_ops_allowed() {
        let small = iface(&[("f", vec![], vec![OutcomeSig::ok(vec![])])]);
        let big = iface(&[
            ("f", vec![], vec![OutcomeSig::ok(vec![])]),
            ("g", vec![], vec![OutcomeSig::ok(vec![])]),
        ]);
        assert!(conforms(&big, &small).is_ok());
        assert!(matches!(
            conforms(&small, &big),
            Err(ConformanceError::MissingOperation { .. })
        ));
    }

    #[test]
    fn everything_conforms_to_empty() {
        let t = iface(&[("f", vec![], vec![])]);
        assert!(conforms(&t, &InterfaceType::empty()).is_ok());
    }

    #[test]
    fn provider_with_fewer_outcomes_is_safe() {
        // Client handles ok + fail; provider only ever returns ok.
        let required = iface(&[(
            "f",
            vec![],
            vec![
                OutcomeSig::ok(vec![]),
                OutcomeSig::new("fail", vec![TypeSpec::Str]),
            ],
        )]);
        let provided = iface(&[("f", vec![], vec![OutcomeSig::ok(vec![])])]);
        assert!(conforms(&provided, &required).is_ok());
        // The reverse is unsafe: provider may return `fail` unhandled.
        assert!(matches!(
            conforms(&required, &provided),
            Err(ConformanceError::UnexpectedOutcome { .. })
        ));
    }

    #[test]
    fn param_contravariance_via_any() {
        // Provider accepting Any serves a client sending Int…
        let required = iface(&[("f", vec![TypeSpec::Int], vec![])]);
        let provided = iface(&[("f", vec![TypeSpec::Any], vec![])]);
        assert!(conforms(&provided, &required).is_ok());
        // …but a provider demanding Int cannot serve a client sending Any.
        assert!(matches!(
            conforms(&required, &provided),
            Err(ConformanceError::ParamMismatch { .. })
        ));
    }

    #[test]
    fn outcome_result_covariance() {
        let required = iface(&[("f", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Any])])]);
        let provided = iface(&[("f", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])]);
        assert!(conforms(&provided, &required).is_ok());
        assert!(matches!(
            conforms(&required, &provided),
            Err(ConformanceError::OutcomeMismatch { .. })
        ));
    }

    #[test]
    fn record_width_subtyping() {
        let narrow = TypeSpec::record([("x", TypeSpec::Int)]);
        let wide = TypeSpec::record([("x", TypeSpec::Int), ("y", TypeSpec::Str)]);
        assert!(spec_conforms(&wide, &narrow));
        assert!(!spec_conforms(&narrow, &wide));
    }

    #[test]
    fn nested_interface_positions_recurse() {
        let inner_small = iface(&[("ping", vec![], vec![OutcomeSig::ok(vec![])])]);
        let inner_big = iface(&[
            ("ping", vec![], vec![OutcomeSig::ok(vec![])]),
            ("pong", vec![], vec![OutcomeSig::ok(vec![])]),
        ]);
        // Result positions: covariant.
        let required = iface(&[(
            "get",
            vec![],
            vec![OutcomeSig::ok(vec![TypeSpec::interface(
                inner_small.clone(),
            )])],
        )]);
        let provided = iface(&[(
            "get",
            vec![],
            vec![OutcomeSig::ok(vec![TypeSpec::interface(inner_big.clone())])],
        )]);
        assert!(conforms(&provided, &required).is_ok());
        assert!(conforms(&required, &provided).is_err());
    }

    #[test]
    fn kind_and_arity_mismatches_reported() {
        let required = iface(&[("f", vec![TypeSpec::Int], vec![])]);
        let provided_wrong_arity = iface(&[("f", vec![TypeSpec::Int, TypeSpec::Int], vec![])]);
        assert!(matches!(
            conforms(&provided_wrong_arity, &required),
            Err(ConformanceError::ParamCountMismatch { .. })
        ));
        let provided_ann = InterfaceTypeBuilder::new()
            .announcement("f", vec![TypeSpec::Int])
            .build();
        assert!(matches!(
            conforms(&provided_ann, &required),
            Err(ConformanceError::KindMismatch { .. })
        ));
    }

    #[test]
    fn errors_display_helpfully() {
        let e = ConformanceError::MissingOperation {
            operation: "withdraw".into(),
        };
        assert!(e.to_string().contains("withdraw"));
    }
}
