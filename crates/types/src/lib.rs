//! # odp-types — the ODP computational type system
//!
//! This crate implements the type layer of the ODP computational language as
//! described in *The Challenge of ODP* (Herbert, 1991):
//!
//! * **Interface signatures** (`[`signature`]`): an interface is a set of
//!   named operations; each operation has parameter types and a *range of
//!   possible outcomes* (terminations), "each one of which carries its own
//!   package of results" (§5.1 of the paper).
//! * **Structural conformance** (`[`conformance`]`): the paper requires that
//!   "type checking be based on interface signature checking: if the
//!   interface type includes the operations required by the client (with
//!   appropriate arguments and outcomes) it is suitable", explicitly
//!   rejecting named type hierarchies because "this fails to meet the
//!   requirements for federation and evolution".
//! * **A type manager** (`[`type_manager`]`): traders "need access to
//!   descriptions of the types of the services" and the type manager "can
//!   impose additional constraints on type matching beyond those implied by
//!   the type system".
//! * **Identifiers** (`[`ids`]`): opaque identifiers for nodes, interfaces,
//!   domains, groups and protocols used throughout the engineering model.
//!
//! The crate is deliberately free of any engineering (transport, threading)
//! concern: it is the part of the platform a stub compiler would share with
//! the runtime.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformance;
pub mod ids;
pub mod signature;
pub mod type_manager;

pub use conformance::{conforms, ConformanceError};
pub use ids::{DomainId, GroupId, InterfaceId, NodeId, ProtocolId, StreamId, TxnId};
pub use signature::{InterfaceType, OperationKind, OperationSig, OutcomeSig, TypeSpec};
pub use type_manager::{TypeManager, TypeManagerError};
