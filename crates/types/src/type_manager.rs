//! The type manager.
//!
//! §6 of the paper: *"Trading is intimately concerned with type-checking: a
//! trader needs access to descriptions of the types of the services it
//! offers: it may be convenient to gather these description up within a type
//! manager. The type manager can impose additional constraints on type
//! matching beyond those implied by the type system of the ODP computational
//! language. Taken together, traders and type managers provide within an ODP
//! system a description of its capabilities: self-describing systems are
//! more open-ended and scale better than those which have a fixed external
//! description."*
//!
//! A [`TypeManager`] therefore provides:
//!
//! * a registry of **named** interface types (names are conveniences for
//!   people and traders — conformance itself never consults them);
//! * **additional match constraints**: administrator-asserted rules that
//!   *narrow* structural matching (e.g. "anything matching `printer` must
//!   also declare a `status` operation") and explicit *compatibility
//!   axioms* that widen it between named types whose structural signatures
//!   are unrelated but which an administrator certifies interoperable
//!   (e.g. across a technology boundary where a federation gateway will
//!   translate).

use crate::conformance::{conforms, ConformanceError};
use crate::signature::InterfaceType;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors produced by the type manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeManagerError {
    /// A type name was registered twice with different signatures.
    Conflict {
        /// The conflicting name.
        name: String,
    },
    /// The named type is unknown.
    Unknown {
        /// The unknown name.
        name: String,
    },
    /// Structural conformance failed.
    NotConformant(ConformanceError),
    /// An administrator constraint rejected the match.
    ConstraintRejected {
        /// Name of the rejecting constraint.
        constraint: String,
    },
}

impl fmt::Display for TypeManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeManagerError::Conflict { name } => {
                write!(
                    f,
                    "type name `{name}` already registered with a different signature"
                )
            }
            TypeManagerError::Unknown { name } => write!(f, "unknown type name `{name}`"),
            TypeManagerError::NotConformant(e) => write!(f, "signatures do not conform: {e}"),
            TypeManagerError::ConstraintRejected { constraint } => {
                write!(f, "match rejected by constraint `{constraint}`")
            }
        }
    }
}

impl std::error::Error for TypeManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TypeManagerError::NotConformant(e) => Some(e),
            _ => None,
        }
    }
}

/// An administrator-installed predicate narrowing type matches.
///
/// Constraints receive the provided and required signatures and may veto a
/// structurally sound match.
pub type MatchConstraint = Box<dyn Fn(&InterfaceType, &InterfaceType) -> bool + Send + Sync>;

/// Registry of named interface types plus additional match rules.
#[derive(Default)]
pub struct TypeManager {
    names: HashMap<String, InterfaceType>,
    /// Pairs (provided-name, required-name) certified compatible by fiat.
    axioms: HashSet<(String, String)>,
    constraints: Vec<(String, MatchConstraint)>,
}

impl TypeManager {
    /// Creates an empty type manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `ty` under `name`. Re-registering the identical signature
    /// is idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`TypeManagerError::Conflict`] if the name is taken by a
    /// different signature.
    pub fn register<S: Into<String>>(
        &mut self,
        name: S,
        ty: InterfaceType,
    ) -> Result<(), TypeManagerError> {
        let name = name.into();
        match self.names.get(&name) {
            Some(existing) if *existing != ty => Err(TypeManagerError::Conflict { name }),
            Some(_) => Ok(()),
            None => {
                self.names.insert(name, ty);
                Ok(())
            }
        }
    }

    /// Looks up a named type.
    ///
    /// # Errors
    ///
    /// Returns [`TypeManagerError::Unknown`] if the name is not registered.
    pub fn lookup(&self, name: &str) -> Result<&InterfaceType, TypeManagerError> {
        self.names
            .get(name)
            .ok_or_else(|| TypeManagerError::Unknown {
                name: name.to_owned(),
            })
    }

    /// Number of registered names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over registered `(name, type)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &InterfaceType)> {
        self.names.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Certifies that services registered as `provided_name` may serve
    /// clients requiring `required_name` even though the signatures are
    /// structurally unrelated (a federation gateway is expected to
    /// translate). This *widens* matching.
    pub fn assert_compatible<S1: Into<String>, S2: Into<String>>(
        &mut self,
        provided_name: S1,
        required_name: S2,
    ) {
        self.axioms
            .insert((provided_name.into(), required_name.into()));
    }

    /// Installs a named constraint that can veto structurally sound
    /// matches. This *narrows* matching.
    pub fn add_constraint<S, F>(&mut self, name: S, predicate: F)
    where
        S: Into<String>,
        F: Fn(&InterfaceType, &InterfaceType) -> bool + Send + Sync + 'static,
    {
        self.constraints.push((name.into(), Box::new(predicate)));
    }

    /// Full match check between anonymous signatures: structural
    /// conformance, then every installed constraint.
    ///
    /// # Errors
    ///
    /// [`TypeManagerError::NotConformant`] or
    /// [`TypeManagerError::ConstraintRejected`].
    pub fn check_match(
        &self,
        provided: &InterfaceType,
        required: &InterfaceType,
    ) -> Result<(), TypeManagerError> {
        conforms(provided, required).map_err(TypeManagerError::NotConformant)?;
        self.check_constraints(provided, required)
    }

    /// Match check between *named* types: a compatibility axiom short-cuts
    /// the structural check (constraints still apply); otherwise behaves as
    /// [`TypeManager::check_match`] on the underlying signatures.
    ///
    /// # Errors
    ///
    /// [`TypeManagerError::Unknown`] for unregistered names, otherwise as
    /// [`TypeManager::check_match`].
    pub fn check_named_match(
        &self,
        provided_name: &str,
        required_name: &str,
    ) -> Result<(), TypeManagerError> {
        let provided = self.lookup(provided_name)?.clone();
        let required = self.lookup(required_name)?.clone();
        if self
            .axioms
            .contains(&(provided_name.to_owned(), required_name.to_owned()))
        {
            return self.check_constraints(&provided, &required);
        }
        self.check_match(&provided, &required)
    }

    fn check_constraints(
        &self,
        provided: &InterfaceType,
        required: &InterfaceType,
    ) -> Result<(), TypeManagerError> {
        for (name, pred) in &self.constraints {
            if !pred(provided, required) {
                return Err(TypeManagerError::ConstraintRejected {
                    constraint: name.clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for TypeManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeManager")
            .field("names", &self.names.len())
            .field("axioms", &self.axioms.len())
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{InterfaceTypeBuilder, OutcomeSig, TypeSpec};

    fn printer() -> InterfaceType {
        InterfaceTypeBuilder::new()
            .interrogation("print", vec![TypeSpec::Bytes], vec![OutcomeSig::ok(vec![])])
            .build()
    }

    fn printer_with_status() -> InterfaceType {
        InterfaceTypeBuilder::new()
            .interrogation("print", vec![TypeSpec::Bytes], vec![OutcomeSig::ok(vec![])])
            .interrogation("status", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Str])])
            .build()
    }

    #[test]
    fn register_and_lookup() {
        let mut tm = TypeManager::new();
        tm.register("printer", printer()).unwrap();
        assert_eq!(tm.lookup("printer").unwrap(), &printer());
        assert!(matches!(
            tm.lookup("scanner"),
            Err(TypeManagerError::Unknown { .. })
        ));
    }

    #[test]
    fn idempotent_reregistration_conflicting_rejected() {
        let mut tm = TypeManager::new();
        tm.register("printer", printer()).unwrap();
        tm.register("printer", printer()).unwrap();
        assert!(matches!(
            tm.register("printer", printer_with_status()),
            Err(TypeManagerError::Conflict { .. })
        ));
        assert_eq!(tm.len(), 1);
    }

    #[test]
    fn structural_match_through_manager() {
        let tm = TypeManager::new();
        assert!(tm.check_match(&printer_with_status(), &printer()).is_ok());
        assert!(matches!(
            tm.check_match(&printer(), &printer_with_status()),
            Err(TypeManagerError::NotConformant(_))
        ));
    }

    #[test]
    fn constraints_narrow_matching() {
        let mut tm = TypeManager::new();
        tm.add_constraint("must-have-status", |provided, _| {
            provided.operation("status").is_some()
        });
        assert!(tm.check_match(&printer_with_status(), &printer()).is_ok());
        assert!(matches!(
            tm.check_match(&printer(), &printer()),
            Err(TypeManagerError::ConstraintRejected { .. })
        ));
    }

    #[test]
    fn axioms_widen_named_matching() {
        let mut tm = TypeManager::new();
        let legacy = InterfaceTypeBuilder::new()
            .interrogation("lpr", vec![TypeSpec::Bytes], vec![OutcomeSig::ok(vec![])])
            .build();
        tm.register("printer", printer()).unwrap();
        tm.register("legacy-printer", legacy).unwrap();
        // Structurally unrelated…
        assert!(tm.check_named_match("legacy-printer", "printer").is_err());
        // …until an administrator certifies a gateway translation exists.
        tm.assert_compatible("legacy-printer", "printer");
        assert!(tm.check_named_match("legacy-printer", "printer").is_ok());
        // Axioms are directional.
        assert!(tm.check_named_match("printer", "legacy-printer").is_err());
    }

    #[test]
    fn iteration_and_emptiness() {
        let mut tm = TypeManager::new();
        assert!(tm.is_empty());
        tm.register("printer", printer()).unwrap();
        let names: Vec<_> = tm.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["printer"]);
    }
}
