//! Interface and operation signatures.
//!
//! The computational language of the paper models every service as an
//! *abstract data type*: "a set of operations which encapsulate data"
//! (§4.1). The signature of an interface is the complete, self-describing
//! record of what a client may do with it:
//!
//! * each **operation** is either an *interrogation* (request/reply — the
//!   paper's "procedural interaction where activity is temporarily
//!   transferred to the invoked interface") or an *announcement*
//!   (asynchronous request-only, "spawning a new activity");
//! * each interrogation has a **range of outcomes** ("terminations"), each
//!   carrying "its own package of results" — this is how "different kinds of
//!   failure" are signalled without exceptions or in-band error codes, and
//!   how multiple results are returned in one round trip "to minimize
//!   latency" (§5.1);
//! * parameters and results are typed by [`TypeSpec`], which distinguishes
//!   *constant-state* primitive shapes (copyable across the network, §4.5)
//!   from interface references (shared, location-transparent).

use std::fmt;

/// The type of a parameter or result position.
///
/// Primitive specs describe ADTs "which have constant state" and therefore
/// "can be copied without breaking computational semantics" (§4.5): the copy
/// behaves identically to the original. `Interface` positions are passed as
/// references, giving client and server "shared access to the interface"
/// (§4.4).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum TypeSpec {
    /// The empty value; an operation with no results still has a termination.
    Unit,
    /// Boolean constant ADT.
    Bool,
    /// 64-bit signed integer constant ADT.
    Int,
    /// 64-bit IEEE float constant ADT (bit-pattern equality).
    Float,
    /// UTF-8 string constant ADT.
    Str,
    /// Opaque byte sequence constant ADT.
    Bytes,
    /// Homogeneous sequence of the element spec.
    Seq(Box<TypeSpec>),
    /// Record with named, ordered fields.
    Record(Vec<(String, TypeSpec)>),
    /// A reference to an ADT interface with the given signature. The value
    /// passed at runtime is an interface reference, never the data itself.
    Interface(Box<InterfaceType>),
    /// Matches any value. `Any` positions trade static safety for
    /// evolution: a federation gateway translating between technology
    /// domains uses them where a full signature cannot be known.
    Any,
}

impl TypeSpec {
    /// Convenience constructor for a sequence spec.
    #[must_use]
    pub fn seq(elem: TypeSpec) -> Self {
        TypeSpec::Seq(Box::new(elem))
    }

    /// Convenience constructor for a record spec.
    #[must_use]
    pub fn record<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, TypeSpec)>,
        S: Into<String>,
    {
        TypeSpec::Record(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Convenience constructor for an interface spec.
    #[must_use]
    pub fn interface(ty: InterfaceType) -> Self {
        TypeSpec::Interface(Box::new(ty))
    }

    /// True if values of this spec have constant state and may be copied
    /// across the network "in place of interface references" (§4.5).
    #[must_use]
    pub fn is_constant_state(&self) -> bool {
        match self {
            TypeSpec::Unit
            | TypeSpec::Bool
            | TypeSpec::Int
            | TypeSpec::Float
            | TypeSpec::Str
            | TypeSpec::Bytes => true,
            TypeSpec::Seq(elem) => elem.is_constant_state(),
            TypeSpec::Record(fields) => fields.iter().all(|(_, t)| t.is_constant_state()),
            TypeSpec::Interface(_) | TypeSpec::Any => false,
        }
    }

    /// Structural depth of the spec; used to bound recursion in decoding.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            TypeSpec::Seq(elem) => 1 + elem.depth(),
            TypeSpec::Record(fields) => {
                1 + fields.iter().map(|(_, t)| t.depth()).max().unwrap_or(0)
            }
            TypeSpec::Interface(ty) => 1 + ty.depth(),
            _ => 1,
        }
    }
}

impl fmt::Debug for TypeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeSpec::Unit => write!(f, "unit"),
            TypeSpec::Bool => write!(f, "bool"),
            TypeSpec::Int => write!(f, "int"),
            TypeSpec::Float => write!(f, "float"),
            TypeSpec::Str => write!(f, "str"),
            TypeSpec::Bytes => write!(f, "bytes"),
            TypeSpec::Seq(e) => write!(f, "seq<{e:?}>"),
            TypeSpec::Record(fs) => {
                write!(f, "{{")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t:?}")?;
                }
                write!(f, "}}")
            }
            TypeSpec::Interface(ty) => write!(f, "interface{ty:?}"),
            TypeSpec::Any => write!(f, "any"),
        }
    }
}

/// One possible termination of an operation: a name plus the package of
/// result types it carries.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct OutcomeSig {
    /// Termination name, e.g. `"ok"`, `"overdrawn"`, `"not_found"`.
    pub name: String,
    /// Types of the results carried by this termination.
    pub results: Vec<TypeSpec>,
}

impl OutcomeSig {
    /// Creates an outcome signature.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, results: Vec<TypeSpec>) -> Self {
        Self {
            name: name.into(),
            results,
        }
    }

    /// The conventional success termination with the given results.
    #[must_use]
    pub fn ok(results: Vec<TypeSpec>) -> Self {
        Self::new(Self::OK, results)
    }

    /// Name of the conventional success termination.
    pub const OK: &'static str = "ok";
    /// Name of the conventional failure termination, carrying a message.
    pub const FAIL: &'static str = "fail";
}

impl fmt::Debug for OutcomeSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:?})", self.name, self.results)
    }
}

/// Whether an operation transfers activity (interrogation) or spawns one
/// (announcement). See §5.1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OperationKind {
    /// Request/reply: the caller blocks for one of the declared outcomes.
    Interrogation,
    /// Request-only: no reply; "failure to meet the constraint" cannot be
    /// reported to the invoker.
    Announcement,
}

/// Signature of one operation in an interface.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct OperationSig {
    /// Operation name, unique within its interface.
    pub name: String,
    /// Interrogation or announcement.
    pub kind: OperationKind,
    /// Parameter types, in call order.
    pub params: Vec<TypeSpec>,
    /// Possible terminations. Announcements have none.
    pub outcomes: Vec<OutcomeSig>,
}

impl OperationSig {
    /// Creates an interrogation signature.
    #[must_use]
    pub fn interrogation<S: Into<String>>(
        name: S,
        params: Vec<TypeSpec>,
        outcomes: Vec<OutcomeSig>,
    ) -> Self {
        Self {
            name: name.into(),
            kind: OperationKind::Interrogation,
            params,
            outcomes,
        }
    }

    /// Creates an announcement signature (no outcomes).
    #[must_use]
    pub fn announcement<S: Into<String>>(name: S, params: Vec<TypeSpec>) -> Self {
        Self {
            name: name.into(),
            kind: OperationKind::Announcement,
            params,
            outcomes: Vec::new(),
        }
    }

    /// Looks up an outcome by name.
    #[must_use]
    pub fn outcome(&self, name: &str) -> Option<&OutcomeSig> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

impl fmt::Debug for OperationSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            OperationKind::Interrogation => "op",
            OperationKind::Announcement => "ann",
        };
        write!(
            f,
            "{kind} {}({:?}) -> {:?}",
            self.name, self.params, self.outcomes
        )
    }
}

/// The signature of an ADT interface: a set of operations.
///
/// Interface types are *structural*: two interfaces with the same operations
/// are the same type regardless of where or by whom they were declared. The
/// paper requires this because named hierarchies "fail to meet the
/// requirements for federation and evolution" (§5.1).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct InterfaceType {
    operations: Vec<OperationSig>,
}

impl InterfaceType {
    /// Creates an interface type from its operations.
    ///
    /// Operations are kept sorted by name so that structurally equal
    /// interfaces compare and hash equal whatever the declaration order.
    ///
    /// # Panics
    ///
    /// Panics if two operations share a name: the dispatcher routes by
    /// operation name, so duplicates would be ambiguous.
    #[must_use]
    pub fn new(mut operations: Vec<OperationSig>) -> Self {
        operations.sort_by(|a, b| a.name.cmp(&b.name));
        for w in operations.windows(2) {
            assert!(
                w[0].name != w[1].name,
                "duplicate operation name `{}` in interface",
                w[0].name
            );
        }
        Self { operations }
    }

    /// The empty interface: top of the conformance order (every interface
    /// conforms to it).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Operations, sorted by name.
    #[must_use]
    pub fn operations(&self) -> &[OperationSig] {
        &self.operations
    }

    /// Looks up an operation by name (binary search — signatures are
    /// consulted on every type-checked invocation).
    #[must_use]
    pub fn operation(&self, name: &str) -> Option<&OperationSig> {
        self.operations
            .binary_search_by(|op| op.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.operations[i])
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True if the interface has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Structural depth, used to bound decoding recursion.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.operations
            .iter()
            .flat_map(|op| {
                op.params
                    .iter()
                    .chain(op.outcomes.iter().flat_map(|o| o.results.iter()))
            })
            .map(TypeSpec::depth)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Debug for InterfaceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.operations.iter()).finish()
    }
}

/// Builder for [`InterfaceType`] used by application code and the examples.
///
/// ```
/// use odp_types::signature::{InterfaceTypeBuilder, OutcomeSig, TypeSpec};
///
/// let account = InterfaceTypeBuilder::new()
///     .interrogation("balance", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
///     .interrogation(
///         "withdraw",
///         vec![TypeSpec::Int],
///         vec![
///             OutcomeSig::ok(vec![TypeSpec::Int]),
///             OutcomeSig::new("overdrawn", vec![TypeSpec::Int]),
///         ],
///     )
///     .announcement("audit", vec![TypeSpec::Str])
///     .build();
/// assert_eq!(account.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct InterfaceTypeBuilder {
    operations: Vec<OperationSig>,
}

impl InterfaceTypeBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an interrogation.
    #[must_use]
    pub fn interrogation<S: Into<String>>(
        mut self,
        name: S,
        params: Vec<TypeSpec>,
        outcomes: Vec<OutcomeSig>,
    ) -> Self {
        self.operations
            .push(OperationSig::interrogation(name, params, outcomes));
        self
    }

    /// Adds an announcement.
    #[must_use]
    pub fn announcement<S: Into<String>>(mut self, name: S, params: Vec<TypeSpec>) -> Self {
        self.operations
            .push(OperationSig::announcement(name, params));
        self
    }

    /// Finishes the interface type.
    ///
    /// # Panics
    ///
    /// Panics if two operations share a name.
    #[must_use]
    pub fn build(self) -> InterfaceType {
        InterfaceType::new(self.operations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> InterfaceType {
        InterfaceTypeBuilder::new()
            .interrogation("read", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
            .interrogation("incr", vec![TypeSpec::Int], vec![OutcomeSig::ok(vec![])])
            .build()
    }

    #[test]
    fn operations_sorted_and_found() {
        let ty = counter();
        assert_eq!(ty.operations()[0].name, "incr");
        assert!(ty.operation("read").is_some());
        assert!(ty.operation("reset").is_none());
    }

    #[test]
    fn structural_equality_ignores_declaration_order() {
        let a = InterfaceType::new(vec![
            OperationSig::interrogation("a", vec![], vec![OutcomeSig::ok(vec![])]),
            OperationSig::interrogation("b", vec![], vec![OutcomeSig::ok(vec![])]),
        ]);
        let b = InterfaceType::new(vec![
            OperationSig::interrogation("b", vec![], vec![OutcomeSig::ok(vec![])]),
            OperationSig::interrogation("a", vec![], vec![OutcomeSig::ok(vec![])]),
        ]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    #[should_panic(expected = "duplicate operation")]
    fn duplicate_operations_rejected() {
        let _ = InterfaceType::new(vec![
            OperationSig::interrogation("a", vec![], vec![]),
            OperationSig::interrogation("a", vec![TypeSpec::Int], vec![]),
        ]);
    }

    #[test]
    fn constant_state_classification() {
        assert!(TypeSpec::Int.is_constant_state());
        assert!(TypeSpec::seq(TypeSpec::Str).is_constant_state());
        assert!(TypeSpec::record([("x", TypeSpec::Int)]).is_constant_state());
        assert!(!TypeSpec::interface(counter()).is_constant_state());
        assert!(!TypeSpec::record([("c", TypeSpec::interface(counter()))]).is_constant_state());
        assert!(!TypeSpec::Any.is_constant_state());
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(TypeSpec::Int.depth(), 1);
        assert_eq!(TypeSpec::seq(TypeSpec::seq(TypeSpec::Int)).depth(), 3);
        let ty = counter();
        assert_eq!(ty.depth(), 1);
        assert_eq!(TypeSpec::interface(ty).depth(), 2);
    }

    #[test]
    fn outcome_lookup() {
        let ty = counter();
        let read = ty.operation("read").unwrap();
        assert!(read.outcome("ok").is_some());
        assert!(read.outcome("fail").is_none());
    }

    #[test]
    fn debug_formats_are_readable() {
        let ty = counter();
        let s = format!("{ty:?}");
        assert!(s.contains("op read"), "{s}");
        let ann = OperationSig::announcement("log", vec![TypeSpec::Str]);
        assert!(format!("{ann:?}").starts_with("ann log"));
    }
}
