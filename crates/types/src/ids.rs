//! Opaque identifiers used across the platform.
//!
//! The engineering model of the paper names several kinds of entity that
//! must be identified system-wide: nodes (capsules), interfaces, security /
//! administrative domains, replica groups, transport protocols, streams and
//! transactions. All of them are small copyable newtypes over `u64` so they
//! can be marshalled cheaply and compared without allocation.
//!
//! Identifiers carry no location semantics by themselves: per §5.4 of the
//! paper, location is a property recorded *alongside* an identifier in an
//! interface reference, so that "the location transparency mechanism in the
//! client does not have to know the server's migration, passivation or
//! checkpointing structure".

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value of the identifier.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a node — in engineering terms a *capsule*: one address
    /// space with its own nucleus, binder and transport endpoint.
    NodeId,
    "node:"
);

id_type!(
    /// Identifies an exported interface. Interface identifiers are unique
    /// system-wide (allocated from a per-node namespace, see
    /// [`InterfaceIdAllocator`]) and survive migration of the object that
    /// implements them.
    InterfaceId,
    "iface:"
);

id_type!(
    /// Identifies an administrative or technology domain (§5.6 of the
    /// paper). Interactions crossing a domain boundary are interecepted by a
    /// federation gateway.
    DomainId,
    "domain:"
);

id_type!(
    /// Identifies a replica group (§5.3). A group of interfaces behaves
    /// "as if it were a singleton, but with increased reliability or
    /// availability".
    GroupId,
    "group:"
);

id_type!(
    /// Identifies a transport protocol by which an interface can be
    /// reached. The paper notes "there may be several protocols by which an
    /// interface can be accessed" (§5.4).
    ProtocolId,
    "proto:"
);

id_type!(
    /// Identifies a stream interface binding (§7.2).
    StreamId,
    "stream:"
);

id_type!(
    /// Identifies a transaction (§5.2).
    TxnId,
    "txn:"
);

/// Well-known protocol identifiers used by the engineering model.
pub mod protocols {
    use super::ProtocolId;

    /// The in-process / simulated-network REX execution protocol.
    pub const REX_SIM: ProtocolId = ProtocolId(1);
    /// The REX execution protocol framed over TCP.
    pub const REX_TCP: ProtocolId = ProtocolId(2);
    /// The stream (flow-oriented) protocol of `odp-streams`.
    pub const STREAM: ProtocolId = ProtocolId(3);
}

/// Allocates interface identifiers unique across a whole system.
///
/// Each node owns a disjoint slice of the 64-bit identifier space: the top
/// 24 bits carry the node number, the bottom 40 bits a per-node counter.
/// This mirrors the paper's requirement that configuration be possible with
/// no "central design or management authority" (§2): nodes never coordinate
/// to allocate identifiers.
#[derive(Debug)]
pub struct InterfaceIdAllocator {
    node: NodeId,
    next: AtomicU64,
}

impl InterfaceIdAllocator {
    /// Number of low bits reserved for the per-node counter.
    pub const LOCAL_BITS: u32 = 40;

    /// Creates an allocator for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node number does not fit in the 24 high bits.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        assert!(
            node.raw() < (1 << (64 - Self::LOCAL_BITS)),
            "node id {} too large for interface id space",
            node
        );
        Self {
            node,
            next: AtomicU64::new(1),
        }
    }

    /// Returns the node this allocator belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Allocates a fresh, system-wide unique interface identifier.
    pub fn allocate(&self) -> InterfaceId {
        let local = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            local < (1 << Self::LOCAL_BITS),
            "interface id space exhausted"
        );
        InterfaceId((self.node.raw() << Self::LOCAL_BITS) | local)
    }

    /// Recovers the allocating node from an interface identifier.
    #[must_use]
    pub fn home_of(id: InterfaceId) -> NodeId {
        NodeId(id.raw() >> Self::LOCAL_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", NodeId(7)), "node:7");
        assert_eq!(format!("{:?}", InterfaceId(9)), "iface:9");
        assert_eq!(format!("{}", DomainId(3)), "domain:3");
    }

    #[test]
    fn allocator_is_unique_and_traceable() {
        let alloc = InterfaceIdAllocator::new(NodeId(5));
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let id = alloc.allocate();
            assert!(seen.insert(id), "duplicate id {id}");
            assert_eq!(InterfaceIdAllocator::home_of(id), NodeId(5));
        }
    }

    #[test]
    fn allocators_on_distinct_nodes_never_collide() {
        let a = InterfaceIdAllocator::new(NodeId(1));
        let b = InterfaceIdAllocator::new(NodeId(2));
        let ids_a: HashSet<_> = (0..100).map(|_| a.allocate()).collect();
        let ids_b: HashSet<_> = (0..100).map(|_| b.allocate()).collect();
        assert!(ids_a.is_disjoint(&ids_b));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_node_rejected() {
        let _ = InterfaceIdAllocator::new(NodeId(1 << 30));
    }

    #[test]
    fn raw_round_trips() {
        let id = InterfaceId::from(42u64);
        assert_eq!(id.raw(), 42);
    }
}
