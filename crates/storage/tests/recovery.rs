//! Integration tests: failure transparency (checkpoint + log replay at an
//! alternative location) and resource transparency (passivation with
//! transparent activation), end to end over the simulated network.

use odp_core::{CallCtx, ExportConfig, InvokeError, Outcome, Servant, World};
use odp_storage::{
    recover, CheckpointPolicy, LoggingLayer, Passivator, StableRepository, WriteAheadLog,
};
use odp_types::signature::{InterfaceTypeBuilder, OutcomeSig};
use odp_types::{InterfaceType, TypeSpec};
use odp_wire::Value;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

struct Counter {
    value: AtomicI64,
}

fn counter_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("read", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "add",
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .build()
}

impl Counter {
    fn fresh() -> Arc<dyn Servant> {
        Arc::new(Self {
            value: AtomicI64::new(0),
        })
    }
}

impl Servant for Counter {
    fn interface_type(&self) -> InterfaceType {
        counter_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "read" => Outcome::ok(vec![Value::Int(self.value.load(Ordering::SeqCst))]),
            "add" => {
                let n = args[0].as_int().unwrap_or(0);
                Outcome::ok(vec![Value::Int(
                    self.value.fetch_add(n, Ordering::SeqCst) + n,
                )])
            }
            _ => Outcome::fail("no such op"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.value.load(Ordering::SeqCst).to_be_bytes().to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
        self.value.store(i64::from_be_bytes(arr), Ordering::SeqCst);
        Ok(())
    }
}

fn export_logged(
    world: &World,
    capsule: usize,
    wal: &Arc<WriteAheadLog>,
    repo: &Arc<StableRepository>,
    every_n: u64,
) -> (odp_wire::InterfaceRef, Arc<LoggingLayer>) {
    let servant = Counter::fresh();
    let layer = LoggingLayer::new(
        &servant,
        Arc::clone(wal),
        Arc::clone(repo),
        CheckpointPolicy {
            every_n_ops: every_n,
        },
        Arc::new(|op| op == "add"),
    );
    let r = world.capsule(capsule).export_with(
        servant,
        ExportConfig {
            layers: vec![layer.clone() as Arc<dyn odp_core::ServerLayer>],
            ..ExportConfig::default()
        },
    );
    (r, layer)
}

#[test]
fn crash_recovery_reinstates_exact_state() {
    let world = World::builder().capsules(3).build();
    let wal = Arc::new(WriteAheadLog::new());
    let repo = Arc::new(StableRepository::default());
    let (r, _layer) = export_logged(&world, 0, &wal, &repo, 10);
    let client = world.capsule(2).bind(r.clone());
    // 25 increments: two checkpoints (at 10 and 20) + 5 logged tail ops.
    for _ in 0..25 {
        client.interrogate("add", vec![Value::Int(1)]).unwrap();
    }
    assert_eq!(wal.tail_for(r.iface, 0).len(), 5);

    // Crash the home node.
    world.capsule(0).crash();

    // Reinstate at an alternative location from checkpoint + log.
    let (new_ref, replayed) = recover(
        world.capsule(1),
        r.iface,
        &Counter::fresh,
        &repo,
        &wal,
        ExportConfig::default(),
        0,
    )
    .unwrap();
    assert_eq!(replayed, 5);
    assert_eq!(new_ref.home, world.capsule(1).node());
    world
        .capsule(1)
        .register_location(r.iface, new_ref.home, new_ref.epoch)
        .unwrap();

    // The old client binding transparently follows (location layer
    // consults the relocator after the crash).
    let out = client.interrogate("read", vec![]).unwrap();
    assert_eq!(out.int(), Some(25), "recovered state differs");
    // And keeps working.
    assert_eq!(
        client
            .interrogate("add", vec![Value::Int(1)])
            .unwrap()
            .int(),
        Some(26)
    );
}

#[test]
fn recovery_without_checkpoint_replays_whole_log() {
    let world = World::builder().capsules(2).build();
    let wal = Arc::new(WriteAheadLog::new());
    let repo = Arc::new(StableRepository::default());
    let (r, _layer) = export_logged(&world, 0, &wal, &repo, u64::MAX);
    let client = world.capsule(1).bind(r.clone());
    for i in 1..=7 {
        client.interrogate("add", vec![Value::Int(i)]).unwrap();
    }
    world.capsule(0).crash();
    let (_new_ref, replayed) = recover(
        world.capsule(1),
        r.iface,
        &Counter::fresh,
        &repo,
        &wal,
        ExportConfig::default(),
        0,
    )
    .unwrap();
    assert_eq!(replayed, 7);
    let out = client.interrogate("read", vec![]).unwrap();
    assert_eq!(out.int(), Some(28));
}

#[test]
fn checkpoint_interval_bounds_log_length() {
    let world = World::builder().capsules(2).build();
    let wal = Arc::new(WriteAheadLog::new());
    let repo = Arc::new(StableRepository::default());
    let (r, layer) = export_logged(&world, 0, &wal, &repo, 5);
    let client = world.capsule(1).bind(r.clone());
    for _ in 0..23 {
        client.interrogate("add", vec![Value::Int(1)]).unwrap();
    }
    assert_eq!(layer.checkpoints.load(Ordering::Relaxed), 4);
    assert!(wal.tail_for(r.iface, 0).len() <= 5);
    // Reads are not logged.
    client.interrogate("read", vec![]).unwrap();
    assert!(wal.tail_for(r.iface, 0).len() <= 5);
}

#[test]
fn passivation_and_transparent_activation() {
    let world = World::builder().capsules(2).build();
    let repo = Arc::new(StableRepository::default());
    let passivator = Passivator::new(Arc::clone(&repo));
    let servant = Counter::fresh();
    let r = world.capsule(0).export(servant);
    let client = world.capsule(1).bind(r.clone());
    client.interrogate("add", vec![Value::Int(42)]).unwrap();

    // Passivate: state goes to the repository, export becomes a stub.
    let stub = passivator
        .passivate(world.capsule(0), r.iface, Arc::new(Counter::fresh))
        .unwrap();
    assert!(!stub.is_activated());
    assert_eq!(repo.len(), 1);

    // The next invocation transparently activates.
    let out = client.interrogate("read", vec![]).unwrap();
    assert_eq!(out.int(), Some(42));
    assert!(stub.is_activated());
    assert_eq!(stub.activations.load(Ordering::Relaxed), 1);
    // Subsequent calls hit the activated object directly.
    client.interrogate("add", vec![Value::Int(1)]).unwrap();
    assert_eq!(client.interrogate("read", vec![]).unwrap().int(), Some(43));
    assert_eq!(stub.activations.load(Ordering::Relaxed), 1);
}

#[test]
fn activation_of_missing_state_reports_passive() {
    use odp_storage::passivate::ActivationStub;
    let world = World::builder().capsules(2).build();
    let repo = Arc::new(StableRepository::default());
    // A stub whose repository entry was removed (e.g. archived off-line).
    let iface = odp_types::InterfaceId(424_242);
    let stub = Arc::new(ActivationStub::new(
        iface,
        counter_type(),
        Arc::new(Counter::fresh),
        Arc::clone(&repo),
    ));
    world
        .capsule(0)
        .export_at(iface, 0, stub as Arc<dyn Servant>, ExportConfig::default());
    let mut r = odp_wire::InterfaceRef::new(iface, world.capsule(0).node(), counter_type());
    r.relocator = None;
    let client = world.capsule(1).bind(r);
    let err = client.interrogate("read", vec![]).unwrap_err();
    assert!(
        matches!(err, InvokeError::Protocol(ref why) if why.contains("__passive")),
        "{err:?}"
    );
}

#[test]
fn passivating_snapshotless_object_fails_cleanly() {
    let world = World::builder().capsules(1).build();
    let repo = Arc::new(StableRepository::default());
    let passivator = Passivator::new(repo);
    let ty = InterfaceTypeBuilder::new()
        .interrogation("f", vec![], vec![OutcomeSig::ok(vec![])])
        .build();
    let plain = Arc::new(odp_core::FnServant::new(ty, |_, _, _| Outcome::ok(vec![])));
    let r = world.capsule(0).export(plain);
    let err = passivator
        .passivate(world.capsule(0), r.iface, Arc::new(Counter::fresh))
        .unwrap_err();
    assert!(err.contains("snapshot"), "{err}");
}
