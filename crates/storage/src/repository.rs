//! The stable object repository.

use odp_types::InterfaceId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// One stored object state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// The snapshot bytes (produced by `Servant::snapshot`).
    pub snapshot: Vec<u8>,
    /// Location epoch the object had when stored; reactivation bumps it.
    pub epoch: u64,
}

/// An in-memory stable store keyed by interface identity.
///
/// Stands in for the paper's disks and archival media (see the
/// substitution table in DESIGN.md). `write_latency` models synchronous
/// stable-write cost so checkpoint-frequency experiments measure a real
/// trade-off rather than a free operation.
pub struct StableRepository {
    objects: Mutex<HashMap<InterfaceId, StoredObject>>,
    write_latency: Duration,
}

impl Default for StableRepository {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

impl StableRepository {
    /// Creates a repository with a simulated per-write latency.
    #[must_use]
    pub fn new(write_latency: Duration) -> Self {
        Self {
            objects: Mutex::new(HashMap::new()),
            write_latency,
        }
    }

    /// Stores (or replaces) an object's snapshot.
    pub fn store(&self, iface: InterfaceId, snapshot: Vec<u8>, epoch: u64) {
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        self.objects
            .lock()
            .insert(iface, StoredObject { snapshot, epoch });
    }

    /// Loads an object's stored state.
    #[must_use]
    pub fn load(&self, iface: InterfaceId) -> Option<StoredObject> {
        self.objects.lock().get(&iface).cloned()
    }

    /// Removes an object (e.g. after garbage collection).
    pub fn remove(&self, iface: InterfaceId) -> Option<StoredObject> {
        self.objects.lock().remove(&iface)
    }

    /// Identities of all stored objects.
    #[must_use]
    pub fn stored(&self) -> Vec<InterfaceId> {
        self.objects.lock().keys().copied().collect()
    }

    /// Number of stored objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// True if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }
}

impl fmt::Debug for StableRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StableRepository")
            .field("objects", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_remove() {
        let repo = StableRepository::default();
        assert!(repo.is_empty());
        repo.store(InterfaceId(1), vec![1, 2, 3], 0);
        assert_eq!(
            repo.load(InterfaceId(1)),
            Some(StoredObject {
                snapshot: vec![1, 2, 3],
                epoch: 0
            })
        );
        repo.store(InterfaceId(1), vec![9], 2);
        assert_eq!(repo.load(InterfaceId(1)).unwrap().epoch, 2);
        assert_eq!(repo.len(), 1);
        assert!(repo.remove(InterfaceId(1)).is_some());
        assert!(repo.load(InterfaceId(1)).is_none());
    }

    #[test]
    fn write_latency_is_applied() {
        let repo = StableRepository::new(Duration::from_millis(20));
        let start = std::time::Instant::now();
        repo.store(InterfaceId(1), vec![], 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
