//! The logging/checkpointing server layer.
//!
//! Another "generated" transparency mechanism in the §4.5 sense: installed
//! declaratively at export time, invisible to both client and servant. The
//! layer:
//!
//! 1. appends every *mutating* operation to the write-ahead log before
//!    dispatch;
//! 2. after every `CheckpointPolicy::every_n_ops` mutations, snapshots the
//!    servant into the stable repository and truncates the log.
//!
//! The checkpoint interval is the recovery-time/runtime-overhead dial that
//! experiment E9 sweeps.

use crate::repository::StableRepository;
use crate::wal::WriteAheadLog;
use odp_core::{CallCtx, Outcome, Servant, ServerLayer, ServerNext};
use odp_wire::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot after this many logged (mutating) operations.
    pub every_n_ops: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self { every_n_ops: 64 }
    }
}

/// The write-ahead logging + checkpointing layer.
pub struct LoggingLayer {
    servant: Arc<dyn Servant>,
    wal: Arc<WriteAheadLog>,
    repository: Arc<StableRepository>,
    policy: CheckpointPolicy,
    is_mutating: Arc<dyn Fn(&str) -> bool + Send + Sync>,
    since_checkpoint: AtomicU64,
    /// Serializes checkpoint decisions (log + snapshot must be coherent).
    checkpoint_lock: Mutex<()>,
    /// Checkpoints taken (experiment accounting).
    pub checkpoints: AtomicU64,
}

impl LoggingLayer {
    /// Creates a layer for `servant`, logging operations classified
    /// mutating by `is_mutating`.
    #[must_use]
    pub fn new(
        servant: &Arc<dyn Servant>,
        wal: Arc<WriteAheadLog>,
        repository: Arc<StableRepository>,
        policy: CheckpointPolicy,
        is_mutating: Arc<dyn Fn(&str) -> bool + Send + Sync>,
    ) -> Arc<Self> {
        Arc::new(Self {
            servant: Arc::clone(servant),
            wal,
            repository,
            policy,
            is_mutating,
            since_checkpoint: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            checkpoints: AtomicU64::new(0),
        })
    }

    /// Forces a checkpoint now (also used at graceful shutdown).
    pub fn checkpoint(&self, iface: odp_types::InterfaceId) {
        let _guard = self.checkpoint_lock.lock();
        if let Some(snapshot) = self.servant.snapshot() {
            let upto = self.wal.last_lsn();
            self.repository.store(iface, snapshot, 0);
            self.wal.truncate(upto);
            self.since_checkpoint.store(0, Ordering::SeqCst);
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl ServerLayer for LoggingLayer {
    fn dispatch(
        &self,
        ctx: &CallCtx,
        op: &str,
        args: Vec<Value>,
        next: &dyn ServerNext,
    ) -> Outcome {
        if !(self.is_mutating)(op) {
            return next.dispatch(ctx, op, args);
        }
        // Write-ahead: log before dispatch.
        self.wal.append(ctx.iface, op, &args);
        let outcome = next.dispatch(ctx, op, args);
        let n = self.since_checkpoint.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.policy.every_n_ops {
            self.checkpoint(ctx.iface);
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "failure:wal"
    }
}

impl std::fmt::Debug for LoggingLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoggingLayer")
            .field("policy", &self.policy)
            .field("checkpoints", &self.checkpoints.load(Ordering::Relaxed))
            .finish()
    }
}
