//! Recovery: reinstating an object at an alternative location.
//!
//! §5.5: *"Objects may write snapshots of their state to storage and log
//! interactions so that the object can be reinstated at an alternative
//! location after a failure."* Recovery composes three mechanisms that
//! already exist — the repository snapshot, the log tail, and
//! [`odp_core::Capsule::export_at`] with a bumped epoch — which is the
//! paper's "transparency is an effect rather than a mechanism" in action.

use crate::repository::StableRepository;
use crate::wal::WriteAheadLog;
use odp_core::{CallCtx, Capsule, ExportConfig, Servant};
use odp_types::InterfaceId;
use odp_wire::InterfaceRef;
use std::sync::Arc;

/// Reinstates the object `iface` on `target`:
///
/// 1. builds a fresh replica with `factory`;
/// 2. restores the latest checkpoint from `repository` (if any);
/// 3. replays the log tail for `iface` from `wal` into the replica;
/// 4. re-exports under the **same identity** with the epoch advanced past
///    both the stored epoch and `min_epoch` (the epoch of the incarnation
///    being replaced, or 0 if unknown), so location-transparent clients
///    re-resolve to it — even across repeated recoveries.
///
/// Returns the new reference and the number of replayed interactions.
///
/// # Errors
///
/// A description if the checkpoint exists but cannot be restored.
pub fn recover(
    target: &Arc<Capsule>,
    iface: InterfaceId,
    factory: &dyn Fn() -> Arc<dyn Servant>,
    repository: &StableRepository,
    wal: &WriteAheadLog,
    config: ExportConfig,
    min_epoch: u64,
) -> Result<(InterfaceRef, usize), String> {
    let replica = factory();
    let mut epoch = min_epoch;
    if let Some(stored) = repository.load(iface) {
        replica
            .restore(&stored.snapshot)
            .map_err(|e| format!("checkpoint restore failed: {e}"))?;
        epoch = epoch.max(stored.epoch);
    }
    let tail = wal.tail_for(iface, 0);
    let replayed = tail.len();
    let ctx = CallCtx {
        caller: target.node(),
        iface,
        announcement: false,
        annotations: std::collections::BTreeMap::new(),
        ..CallCtx::default()
    };
    for record in tail {
        let _ = replica.dispatch(&record.op, record.args, &ctx);
    }
    let new_ref = target.export_at(iface, epoch + 1, replica, config);
    Ok((new_ref, replayed))
}
