//! Passivation and transparent activation (resource transparency, §5.5).
//!
//! *"Resource management may cause an object to be passivated when it is
//! not in use — for example by removing it from main memory and putting it
//! on disc."* and §5.4: *"This passive location can be advised to the
//! relocation mechanisms and subsequent reactivation made transparent to
//! clients of the object."*
//!
//! [`Passivator::passivate`] snapshots an active object into the stable
//! repository and replaces its export with an [`ActivationStub`]: a servant
//! whose first dispatch reinstates the real object from storage and then
//! delegates. Clients never observe the difference beyond latency — the
//! definition of resource transparency.

use crate::repository::StableRepository;
use odp_core::{CallCtx, Capsule, ExportConfig, Outcome, Servant};
use odp_types::{InterfaceId, InterfaceType};
use odp_wire::Value;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Factory reconstructing an empty replica for activation.
pub type Factory = Arc<dyn Fn() -> Arc<dyn Servant> + Send + Sync>;

/// A stand-in servant that activates the real object on first use.
pub struct ActivationStub {
    iface: InterfaceId,
    ty: InterfaceType,
    factory: Factory,
    repository: Arc<StableRepository>,
    inner: Mutex<Option<Arc<dyn Servant>>>,
    activated: AtomicBool,
    /// Activations performed (experiment accounting).
    pub activations: AtomicU64,
}

impl ActivationStub {
    /// Creates a stub for `iface` with signature `ty`.
    #[must_use]
    pub fn new(
        iface: InterfaceId,
        ty: InterfaceType,
        factory: Factory,
        repository: Arc<StableRepository>,
    ) -> Self {
        Self {
            iface,
            ty,
            factory,
            repository,
            inner: Mutex::new(None),
            activated: AtomicBool::new(false),
            activations: AtomicU64::new(0),
        }
    }

    /// True once the real object has been reinstated.
    #[must_use]
    pub fn is_activated(&self) -> bool {
        self.activated.load(Ordering::SeqCst)
    }

    fn activate(&self) -> Result<Arc<dyn Servant>, String> {
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.as_ref() {
            return Ok(Arc::clone(existing));
        }
        let stored = self
            .repository
            .load(self.iface)
            .ok_or_else(|| format!("{} is not in the repository", self.iface))?;
        let servant = (self.factory)();
        servant.restore(&stored.snapshot)?;
        *inner = Some(Arc::clone(&servant));
        self.activated.store(true, Ordering::SeqCst);
        self.activations.fetch_add(1, Ordering::Relaxed);
        Ok(servant)
    }
}

impl Servant for ActivationStub {
    fn interface_type(&self) -> InterfaceType {
        self.ty.clone()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, ctx: &CallCtx) -> Outcome {
        match self.activate() {
            Ok(servant) => servant.dispatch(op, args, ctx),
            Err(why) => {
                Outcome::engineering(odp_core::terminations::PASSIVE, vec![Value::str(why)])
            }
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        self.inner.lock().as_ref().and_then(|s| s.snapshot())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        self.activate()?.restore(snapshot)
    }
}

impl std::fmt::Debug for ActivationStub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivationStub")
            .field("iface", &self.iface)
            .field("activated", &self.is_activated())
            .finish()
    }
}

/// Drives passivation for a capsule.
pub struct Passivator {
    repository: Arc<StableRepository>,
    /// Passivations performed.
    pub passivations: AtomicU64,
}

impl Passivator {
    /// Creates a passivator over a repository.
    #[must_use]
    pub fn new(repository: Arc<StableRepository>) -> Self {
        Self {
            repository,
            passivations: AtomicU64::new(0),
        }
    }

    /// The repository used for passive state.
    #[must_use]
    pub fn repository(&self) -> &Arc<StableRepository> {
        &self.repository
    }

    /// Passivates an active export: snapshots the object to the
    /// repository and swaps the export for an [`ActivationStub`] under the
    /// same identity. Returns the stub.
    ///
    /// # Errors
    ///
    /// A description if the interface is not exported here or the object
    /// does not support snapshots.
    pub fn passivate(
        &self,
        capsule: &Arc<Capsule>,
        iface: InterfaceId,
        factory: Factory,
    ) -> Result<Arc<ActivationStub>, String> {
        let servant = capsule
            .servant_of(iface)
            .ok_or_else(|| format!("{iface} is not actively exported"))?;
        let snapshot = servant
            .snapshot()
            .ok_or_else(|| format!("{iface} does not support snapshots"))?;
        let ty = servant.interface_type();
        self.repository.store(iface, snapshot, 0);
        let stub = Arc::new(ActivationStub::new(
            iface,
            ty,
            factory,
            Arc::clone(&self.repository),
        ));
        // Replace the export in place: clients keep their references.
        capsule.unexport(iface);
        capsule.export_at(
            iface,
            0,
            Arc::clone(&stub) as Arc<dyn Servant>,
            ExportConfig::default(),
        );
        self.passivations.fetch_add(1, Ordering::Relaxed);
        Ok(stub)
    }
}

impl std::fmt::Debug for Passivator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Passivator")
            .field("passivations", &self.passivations.load(Ordering::Relaxed))
            .finish()
    }
}
