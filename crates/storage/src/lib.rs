//! # odp-storage — resource and failure transparency (§5.5)
//!
//! *"Objects that are not actively in use may be transferred from the
//! execution environment to storage … Objects may write snapshots of their
//! state to storage and log interactions so that the object can be
//! reinstated at an alternative location after a failure."*
//!
//! The paper's key observation is that migration, resource and failure
//! transparency **share mechanism**: "there is a great deal of sharing of
//! mechanism possible between the several transparencies … Transparency is
//! therefore an effect rather than a mechanism." The shared mechanism here
//! is the [`odp_core::Servant::snapshot`] / `restore` pair; this crate adds
//! the storage engineering around it:
//!
//! * [`repository`] — [`StableRepository`]: the "stable object repository",
//!   keyed by interface identity, holding snapshots with their epochs.
//!   (In-memory, standing in for 1991 disks per DESIGN.md; an optional
//!   simulated write latency makes checkpoint-interval experiments
//!   honest.)
//! * [`wal`] — [`WriteAheadLog`]: the "log of outstanding interactions"
//!   appended *before* dispatch, replayed after a crash "so that … the
//!   replacement object can mirror exactly the state of its predecessor".
//! * [`checkpoint`] — [`LoggingLayer`]: a server layer (generated
//!   engineering, like every transparency) that logs mutating operations
//!   and checkpoints every *N* of them, truncating the log — the classic
//!   recovery-time/overhead trade-off, swept by experiment E9.
//! * [`recovery`] — [`recover`]: restore the latest checkpoint, replay the
//!   log tail, re-export under the same identity with a bumped epoch, and
//!   register the new location — after which location-transparent clients
//!   simply continue (checkpointing "followed by recovery at alternate
//!   locations to mask faults", §3).
//! * [`passivate`] — [`Passivator`] and the activation wrapper: passive
//!   objects vacate memory; the first invocation transparently reinstates
//!   them ("resource transparency — masking changes in the representation
//!   of an object and the resources used to support it (e.g. automatic
//!   retrieval and storage of objects between volatile memory and a stable
//!   object repository)").

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod passivate;
pub mod recovery;
pub mod repository;
pub mod wal;

pub use checkpoint::{CheckpointPolicy, LoggingLayer};
pub use passivate::Passivator;
pub use recovery::recover;
pub use repository::StableRepository;
pub use wal::{LogRecord, WriteAheadLog};
