//! The write-ahead interaction log.
//!
//! §5.5: failure transparency requires "a log of outstanding interactions,
//! so that when recovery occurs, the replacement object can mirror exactly
//! the state of its predecessor". Records are appended *before* the
//! operation is dispatched (write-ahead), so a crash between log and
//! dispatch replays an operation that may not have executed — which is safe
//! because replay drives the same at-most-once dispatch path.

use odp_types::InterfaceId;
use odp_wire::Value;
use parking_lot::Mutex;
use std::fmt;

/// One logged interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Log sequence number (dense, starting at 1).
    pub lsn: u64,
    /// Target interface.
    pub iface: InterfaceId,
    /// Operation name.
    pub op: String,
    /// Argument values.
    pub args: Vec<Value>,
}

/// An append-only log with prefix truncation.
pub struct WriteAheadLog {
    inner: Mutex<WalInner>,
}

struct WalInner {
    records: Vec<LogRecord>,
    next_lsn: u64,
    truncated_upto: u64,
}

impl Default for WriteAheadLog {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteAheadLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(WalInner {
                records: Vec::new(),
                next_lsn: 1,
                truncated_upto: 0,
            }),
        }
    }

    /// Appends a record, returning its LSN.
    pub fn append(&self, iface: InterfaceId, op: &str, args: &[Value]) -> u64 {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.records.push(LogRecord {
            lsn,
            iface,
            op: op.to_owned(),
            args: args.to_vec(),
        });
        lsn
    }

    /// Removes all records with `lsn <= upto` (checkpoint truncation).
    pub fn truncate(&self, upto: u64) {
        let mut inner = self.inner.lock();
        inner.records.retain(|r| r.lsn > upto);
        if upto > inner.truncated_upto {
            inner.truncated_upto = upto;
        }
    }

    /// All records after `after_lsn`, in order (recovery replay).
    #[must_use]
    pub fn tail(&self, after_lsn: u64) -> Vec<LogRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| r.lsn > after_lsn)
            .cloned()
            .collect()
    }

    /// Records for one interface after `after_lsn`.
    #[must_use]
    pub fn tail_for(&self, iface: InterfaceId, after_lsn: u64) -> Vec<LogRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| r.iface == iface && r.lsn > after_lsn)
            .cloned()
            .collect()
    }

    /// Current length (untruncated records).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True if the (untruncated) log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }

    /// Highest LSN issued so far.
    #[must_use]
    pub fn last_lsn(&self) -> u64 {
        self.inner.lock().next_lsn - 1
    }
}

impl fmt::Debug for WriteAheadLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("WriteAheadLog")
            .field("records", &inner.records.len())
            .field("next_lsn", &inner.next_lsn)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_tail() {
        let wal = WriteAheadLog::new();
        assert_eq!(wal.append(InterfaceId(1), "a", &[Value::Int(1)]), 1);
        assert_eq!(wal.append(InterfaceId(2), "b", &[]), 2);
        assert_eq!(wal.append(InterfaceId(1), "c", &[]), 3);
        assert_eq!(wal.tail(0).len(), 3);
        assert_eq!(wal.tail(2).len(), 1);
        let for_one = wal.tail_for(InterfaceId(1), 0);
        assert_eq!(for_one.len(), 2);
        assert_eq!(for_one[0].op, "a");
        assert_eq!(for_one[1].op, "c");
    }

    #[test]
    fn truncate_drops_prefix_only() {
        let wal = WriteAheadLog::new();
        for i in 0..10 {
            wal.append(InterfaceId(1), &format!("op{i}"), &[]);
        }
        wal.truncate(7);
        assert_eq!(wal.len(), 3);
        let tail = wal.tail(0);
        assert_eq!(tail[0].lsn, 8);
        // LSNs keep increasing after truncation.
        assert_eq!(wal.append(InterfaceId(1), "next", &[]), 11);
        assert_eq!(wal.last_lsn(), 11);
    }
}
