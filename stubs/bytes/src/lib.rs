//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `bytes` to this in-tree implementation of the API subset odp-rs uses.
//! Semantics match the real crate where it matters for the zero-copy hot
//! path: `Bytes` is a cheaply clonable, refcounted view; `slice`/`split_to`
//! share the underlying allocation instead of copying.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Backing storage for a [`Bytes`] view.
#[derive(Debug, Clone)]
enum Storage {
    /// Borrowed from static memory (`Bytes::from_static`).
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<Vec<u8>>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Static(s) => s,
            Storage::Shared(v) => v.as_slice(),
        }
    }
}

/// A cheaply clonable, immutable, refcounted slice of contiguous memory.
#[derive(Debug, Clone)]
pub struct Bytes {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes {
            storage: Storage::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Creates a `Bytes` view of a static slice without copying.
    #[must_use]
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            storage: Storage::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies `data` into a fresh shared allocation.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_ref(&self) -> &[u8] {
        &self.storage.as_slice()[self.start..self.end]
    }

    /// Copies the viewed bytes into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Returns a sub-view sharing the same storage (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching the real crate.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds: {range:?} of {}",
            self.len()
        );
        Bytes {
            storage: self.storage.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them. Both halves share the original storage.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.slice(0..n);
        self.start += n;
        head
    }

    /// Truncates the view to the first `n` bytes (no-op if shorter).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.end = self.start + n;
        }
    }

    /// Clears the view.
    pub fn clear(&mut self) {
        self.end = self.start;
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            storage: Storage::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable, uniquely owned byte buffer; freeze into [`Bytes`] when done.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Reserves room for at least `n` more bytes.
    pub fn reserve(&mut self, n: usize) {
        self.vec.reserve(n);
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Truncates to the first `n` bytes.
    pub fn truncate(&mut self, n: usize) {
        self.vec.truncate(n);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// The buffered bytes.
    #[must_use]
    pub fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.vec.extend(iter);
    }
}

/// Read cursor over a byte container (API subset of the real trait).
///
/// Integer accessors use network byte order (big-endian), like the real
/// crate's `get_*` family.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    /// Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

/// Write sink for bytes (API subset of the real trait). Integer writers
/// use network byte order (big-endian), like the real crate's `put_*`.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7]);
    }

    #[test]
    fn buf_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x1234);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.remaining(), 0);
    }
}
