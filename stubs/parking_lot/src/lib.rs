//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! The build container has no registry access, so the workspace patches
//! `parking_lot` to this in-tree implementation of the API subset odp-rs
//! uses: infallible `lock()`/`read()`/`write()` (poison-transparent — a
//! panicked holder does not poison the lock for everyone else, matching
//! parking_lot semantics) and a `Condvar` whose `wait`/`wait_for` take
//! `&mut MutexGuard` instead of consuming the guard.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                guard: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance exists so [`Condvar`] can
/// temporarily take the underlying std guard during a wait.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock with infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self
                .inner
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self
                .inner
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(RwLockReadGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                guard: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(RwLockWriteGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                guard: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII read guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII write guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose waits borrow the guard mutably instead of
/// consuming it (parking_lot style).
#[derive(Debug, Default)]
pub struct Condvar {
    cv: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            cv: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self
            .cv
            .wait(inner)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.guard = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present before wait");
        let (inner, result) = match self.cv.wait_timeout(inner, timeout) {
            Ok((inner, result)) => (inner, result),
            Err(poisoned) => {
                let (inner, result) = poisoned.into_inner();
                (inner, result)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// One-time initialization cell (API subset).
#[derive(Debug, Default)]
pub struct Once {
    done: AtomicBool,
    gate: Mutex<()>,
}

impl Once {
    /// Creates a new `Once`.
    #[must_use]
    pub const fn new() -> Once {
        Once {
            done: AtomicBool::new(false),
            gate: Mutex::new(()),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _guard = self.gate.lock();
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let timed_out = cv.wait_for(&mut ready, Duration::from_secs(5)).timed_out();
            assert!(!timed_out, "worker never signalled");
        }
        handle.join().expect("worker");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
