//! Offline stand-in for `criterion`: a minimal statistical bench harness
//! with the API subset the odp-rs benches use (`criterion_group!` in the
//! `name`/`config`/`targets` form, benchmark groups, `iter`,
//! `iter_custom`, throughput annotation).
//!
//! Measurement model: per benchmark, a short warm-up loop, then
//! `sample_size` timed samples of a batch whose size is auto-scaled so a
//! sample takes ≥ ~50µs; the reported figure is the median ns/iteration.
//! That is enough for the repo's own before/after comparisons (the
//! `perf_snapshot` bin does the gating measurements); it does not attempt
//! criterion's full bootstrap analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// CLI-argument hook; this stand-in accepts and ignores harness args
    /// (`--bench`, filters) so `cargo bench` invocations work unchanged.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, &id.into().label, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Records the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&self.config, &label, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&self.config, &label, &mut |b: &mut Bencher| b_with(b, input, &mut f));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn b_with<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input);
}

/// Identifier for a benchmark: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a displayed parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Per-iteration workload annotation (reported only, in this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Median ns/iter of the measured samples, filled by `iter*`.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, auto-scaling batch size for resolution.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (bounded).
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline && warm_iters < 1_000_000 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }

        // Batch size: aim for samples of at least ~50µs.
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_micros(50).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let samples = self.config.sample_size;
        let budget = Instant::now() + self.config.measurement_time;
        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > budget {
                break;
            }
        }
        self.finish_samples(per_iter_ns);
    }

    /// Times a routine that measures itself: `routine(iters)` must return
    /// the total duration of `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let samples = self.config.sample_size.min(16);
        let iters_per_sample = 10u64;
        let budget = Instant::now() + self.config.measurement_time;
        let mut per_iter_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let total = routine(iters_per_sample);
            per_iter_ns.push(total.as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() > budget {
                break;
            }
        }
        self.finish_samples(per_iter_ns);
    }

    fn finish_samples(&mut self, mut per_iter_ns: Vec<f64>) {
        if per_iter_ns.is_empty() {
            return;
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter_ns[per_iter_ns.len() / 2]);
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        result_ns: None,
    };
    f(&mut bencher);
    match bencher.result_ns {
        Some(ns) => println!("{label:<60} time: [{}]", format_ns(ns)),
        None => println!("{label:<60} time: [no samples]"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Defines a bench group entry point. Supports both the plain
/// `criterion_group!(name, target, ...)` form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_custom_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(7u64.wrapping_mul(3));
                }
                start.elapsed()
            })
        });
    }
}
