//! Offline stand-in for `rand`, providing the deterministic-seeding API
//! subset odp-rs uses (`StdRng::seed_from_u64`, `random_range`,
//! `random_bool`, `fill_bytes`). The generator is SplitMix64 — not
//! cryptographic, but the workspace only uses it for simulated jitter,
//! fault schedules and test data.

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-generation API (subset).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }

    /// Uniform draw from `range` (empty ranges return `range.start`).
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        if range.end <= range.start {
            return range.start;
        }
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Extension alias kept for source compatibility: some rand versions hang
/// `random_range`/`random_bool` off an extension trait.
pub use Rng as RngExt;

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_and_bool_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
