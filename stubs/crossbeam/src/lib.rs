//! Offline stand-in for `crossbeam`, providing the `channel` module subset
//! odp-rs uses: MPMC bounded/unbounded channels with clonable senders *and*
//! receivers, blocking/timeout/non-blocking receives, and disconnect
//! semantics matching the real crate (send fails once all receivers are
//! gone; recv drains remaining messages then reports disconnect).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel is empty"),
                TryRecvError::Disconnected => write!(f, "channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Signalled when a message arrives or the last sender leaves.
        readable: Condvar,
        /// Signalled when capacity frees up or the last receiver leaves.
        writable: Condvar,
    }

    fn lock<'a, T>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel holding at most `cap` messages; sends
    /// block while full.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails (returning the message) once all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut queue = lock(&shared.queue);
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared
                            .writable
                            .wait_timeout(queue, Duration::from_millis(50))
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .0;
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.readable.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.shared.queue).len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// is gone (and the queue is drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.writable.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .readable
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &*self.shared;
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.writable.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = shared
                    .readable
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut queue = lock(&shared.queue);
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.writable.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            lock(&self.shared.queue).len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders so they observe disconnect.
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).expect("send");
            tx.send(2).expect("send");
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u8>();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).expect("first fits");
            let t = thread::spawn(move || tx.send(2).expect("second sends after drain"));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
            t.join().expect("sender thread");
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = unbounded();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).expect("send");
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|c| c.join().expect("consumer"))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
