/root/repo/target/release/examples/video_wall-a72ceb2a9bcbb7ac.d: crates/odp/../../examples/video_wall.rs

/root/repo/target/release/examples/video_wall-a72ceb2a9bcbb7ac: crates/odp/../../examples/video_wall.rs

crates/odp/../../examples/video_wall.rs:
