/root/repo/target/release/examples/trace_demo-5bcf401e6307c66b.d: crates/odp/../../examples/trace_demo.rs

/root/repo/target/release/examples/trace_demo-5bcf401e6307c66b: crates/odp/../../examples/trace_demo.rs

crates/odp/../../examples/trace_demo.rs:
