/root/repo/target/release/examples/federated_printing-7d50ed22c5cf2eb9.d: crates/odp/../../examples/federated_printing.rs

/root/repo/target/release/examples/federated_printing-7d50ed22c5cf2eb9: crates/odp/../../examples/federated_printing.rs

crates/odp/../../examples/federated_printing.rs:
