/root/repo/target/release/examples/quickstart-8adb94a9b18e424e.d: crates/odp/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8adb94a9b18e424e: crates/odp/../../examples/quickstart.rs

crates/odp/../../examples/quickstart.rs:
