/root/repo/target/release/examples/fault_tolerant_ledger-0b69331582e89b24.d: crates/odp/../../examples/fault_tolerant_ledger.rs

/root/repo/target/release/examples/fault_tolerant_ledger-0b69331582e89b24: crates/odp/../../examples/fault_tolerant_ledger.rs

crates/odp/../../examples/fault_tolerant_ledger.rs:
