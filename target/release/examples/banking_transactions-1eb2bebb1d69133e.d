/root/repo/target/release/examples/banking_transactions-1eb2bebb1d69133e.d: crates/odp/../../examples/banking_transactions.rs

/root/repo/target/release/examples/banking_transactions-1eb2bebb1d69133e: crates/odp/../../examples/banking_transactions.rs

crates/odp/../../examples/banking_transactions.rs:
