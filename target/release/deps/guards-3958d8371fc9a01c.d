/root/repo/target/release/deps/guards-3958d8371fc9a01c.d: crates/security/tests/guards.rs

/root/repo/target/release/deps/guards-3958d8371fc9a01c: crates/security/tests/guards.rs

crates/security/tests/guards.rs:
