/root/repo/target/release/deps/rand-56c232316be9f1df.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-56c232316be9f1df.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-56c232316be9f1df.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
