/root/repo/target/release/deps/perf_snapshot-adb24809e7bc15ad.d: crates/bench/src/bin/perf_snapshot.rs

/root/repo/target/release/deps/perf_snapshot-adb24809e7bc15ad: crates/bench/src/bin/perf_snapshot.rs

crates/bench/src/bin/perf_snapshot.rs:
