/root/repo/target/release/deps/n_version-ad200a11c132c73b.d: crates/groups/tests/n_version.rs

/root/repo/target/release/deps/n_version-ad200a11c132c73b: crates/groups/tests/n_version.rs

crates/groups/tests/n_version.rs:
