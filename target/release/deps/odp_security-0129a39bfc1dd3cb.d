/root/repo/target/release/deps/odp_security-0129a39bfc1dd3cb.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/release/deps/odp_security-0129a39bfc1dd3cb: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
