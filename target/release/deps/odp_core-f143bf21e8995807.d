/root/repo/target/release/deps/odp_core-f143bf21e8995807.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/release/deps/libodp_core-f143bf21e8995807.rlib: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/release/deps/libodp_core-f143bf21e8995807.rmeta: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
