/root/repo/target/release/deps/odp_bench-cd7b487a5d4779b2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/odp_bench-cd7b487a5d4779b2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
