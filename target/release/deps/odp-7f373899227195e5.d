/root/repo/target/release/deps/odp-7f373899227195e5.d: crates/odp/src/lib.rs

/root/repo/target/release/deps/libodp-7f373899227195e5.rlib: crates/odp/src/lib.rs

/root/repo/target/release/deps/libodp-7f373899227195e5.rmeta: crates/odp/src/lib.rs

crates/odp/src/lib.rs:
