/root/repo/target/release/deps/platform_properties-8fb964ee3de5ea31.d: crates/odp/../../tests/platform_properties.rs

/root/repo/target/release/deps/platform_properties-8fb964ee3de5ea31: crates/odp/../../tests/platform_properties.rs

crates/odp/../../tests/platform_properties.rs:
