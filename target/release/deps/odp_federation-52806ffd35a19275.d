/root/repo/target/release/deps/odp_federation-52806ffd35a19275.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/release/deps/odp_federation-52806ffd35a19275: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
