/root/repo/target/release/deps/odp-7fbeba19f4714c2d.d: crates/odp/src/lib.rs

/root/repo/target/release/deps/libodp-7fbeba19f4714c2d.rlib: crates/odp/src/lib.rs

/root/repo/target/release/deps/libodp-7fbeba19f4714c2d.rmeta: crates/odp/src/lib.rs

crates/odp/src/lib.rs:
