/root/repo/target/release/deps/trace_propagation-360226a277ba16f6.d: crates/odp/../../tests/trace_propagation.rs

/root/repo/target/release/deps/trace_propagation-360226a277ba16f6: crates/odp/../../tests/trace_propagation.rs

crates/odp/../../tests/trace_propagation.rs:
