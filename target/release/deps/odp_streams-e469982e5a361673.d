/root/repo/target/release/deps/odp_streams-e469982e5a361673.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/release/deps/libodp_streams-e469982e5a361673.rlib: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/release/deps/libodp_streams-e469982e5a361673.rmeta: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
