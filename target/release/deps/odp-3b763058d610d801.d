/root/repo/target/release/deps/odp-3b763058d610d801.d: crates/odp/src/lib.rs

/root/repo/target/release/deps/odp-3b763058d610d801: crates/odp/src/lib.rs

crates/odp/src/lib.rs:
