/root/repo/target/release/deps/odp_tx-cc218b7770c0688e.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/release/deps/libodp_tx-cc218b7770c0688e.rlib: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/release/deps/libodp_tx-cc218b7770c0688e.rmeta: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
