/root/repo/target/release/deps/rand-e9a285be26658846.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-e9a285be26658846.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-e9a285be26658846.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
