/root/repo/target/release/deps/odp_groups-3b6eaadc99af8999.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/release/deps/libodp_groups-3b6eaadc99af8999.rlib: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/release/deps/libodp_groups-3b6eaadc99af8999.rmeta: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
