/root/repo/target/release/deps/odp_gc-90f32c13d6fdaaae.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/release/deps/odp_gc-90f32c13d6fdaaae: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
