/root/repo/target/release/deps/collection-43cfb955f5f2afdf.d: crates/gc/tests/collection.rs

/root/repo/target/release/deps/collection-43cfb955f5f2afdf: crates/gc/tests/collection.rs

crates/gc/tests/collection.rs:
