/root/repo/target/release/deps/odp_net-9bacecedb2af4312.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/release/deps/odp_net-9bacecedb2af4312: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
