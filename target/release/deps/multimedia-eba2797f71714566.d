/root/repo/target/release/deps/multimedia-eba2797f71714566.d: crates/streams/tests/multimedia.rs

/root/repo/target/release/deps/multimedia-eba2797f71714566: crates/streams/tests/multimedia.rs

crates/streams/tests/multimedia.rs:
