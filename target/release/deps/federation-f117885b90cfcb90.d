/root/repo/target/release/deps/federation-f117885b90cfcb90.d: crates/trading/tests/federation.rs

/root/repo/target/release/deps/federation-f117885b90cfcb90: crates/trading/tests/federation.rs

crates/trading/tests/federation.rs:
