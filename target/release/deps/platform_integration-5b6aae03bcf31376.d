/root/repo/target/release/deps/platform_integration-5b6aae03bcf31376.d: crates/odp/../../tests/platform_integration.rs

/root/repo/target/release/deps/platform_integration-5b6aae03bcf31376: crates/odp/../../tests/platform_integration.rs

crates/odp/../../tests/platform_integration.rs:
