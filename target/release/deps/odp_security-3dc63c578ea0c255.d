/root/repo/target/release/deps/odp_security-3dc63c578ea0c255.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/release/deps/libodp_security-3dc63c578ea0c255.rlib: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/release/deps/libodp_security-3dc63c578ea0c255.rmeta: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
