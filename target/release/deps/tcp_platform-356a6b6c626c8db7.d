/root/repo/target/release/deps/tcp_platform-356a6b6c626c8db7.d: crates/odp/../../tests/tcp_platform.rs

/root/repo/target/release/deps/tcp_platform-356a6b6c626c8db7: crates/odp/../../tests/tcp_platform.rs

crates/odp/../../tests/tcp_platform.rs:
