/root/repo/target/release/deps/odp_core-ec6533f9df02803d.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/release/deps/libodp_core-ec6533f9df02803d.rlib: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/release/deps/libodp_core-ec6533f9df02803d.rmeta: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
