/root/repo/target/release/deps/traded_streams-4333c43f3353350c.d: crates/streams/tests/traded_streams.rs

/root/repo/target/release/deps/traded_streams-4333c43f3353350c: crates/streams/tests/traded_streams.rs

crates/streams/tests/traded_streams.rs:
