/root/repo/target/release/deps/transparency_matrix-83cacf1aac418d04.d: crates/odp/../../tests/transparency_matrix.rs

/root/repo/target/release/deps/transparency_matrix-83cacf1aac418d04: crates/odp/../../tests/transparency_matrix.rs

crates/odp/../../tests/transparency_matrix.rs:
