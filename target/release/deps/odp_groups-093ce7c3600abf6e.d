/root/repo/target/release/deps/odp_groups-093ce7c3600abf6e.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/release/deps/odp_groups-093ce7c3600abf6e: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
