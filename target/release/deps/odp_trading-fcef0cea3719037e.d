/root/repo/target/release/deps/odp_trading-fcef0cea3719037e.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/release/deps/libodp_trading-fcef0cea3719037e.rlib: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/release/deps/libodp_trading-fcef0cea3719037e.rmeta: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
