/root/repo/target/release/deps/coalesced_throughput-ab0547a17fd6a5a8.d: crates/net/tests/coalesced_throughput.rs

/root/repo/target/release/deps/coalesced_throughput-ab0547a17fd6a5a8: crates/net/tests/coalesced_throughput.rs

crates/net/tests/coalesced_throughput.rs:
