/root/repo/target/release/deps/transport_contract-b1098920ca4829c1.d: crates/net/tests/transport_contract.rs

/root/repo/target/release/deps/transport_contract-b1098920ca4829c1: crates/net/tests/transport_contract.rs

crates/net/tests/transport_contract.rs:
