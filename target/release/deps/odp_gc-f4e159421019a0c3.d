/root/repo/target/release/deps/odp_gc-f4e159421019a0c3.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/release/deps/libodp_gc-f4e159421019a0c3.rlib: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/release/deps/libodp_gc-f4e159421019a0c3.rmeta: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
