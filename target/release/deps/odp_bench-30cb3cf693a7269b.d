/root/repo/target/release/deps/odp_bench-30cb3cf693a7269b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libodp_bench-30cb3cf693a7269b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libodp_bench-30cb3cf693a7269b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
