/root/repo/target/release/deps/replication-e4a9e7115852160b.d: crates/groups/tests/replication.rs

/root/repo/target/release/deps/replication-e4a9e7115852160b: crates/groups/tests/replication.rs

crates/groups/tests/replication.rs:
