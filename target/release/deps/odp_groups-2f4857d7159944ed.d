/root/repo/target/release/deps/odp_groups-2f4857d7159944ed.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/release/deps/libodp_groups-2f4857d7159944ed.rlib: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/release/deps/libodp_groups-2f4857d7159944ed.rmeta: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
