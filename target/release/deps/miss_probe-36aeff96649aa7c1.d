/root/repo/target/release/deps/miss_probe-36aeff96649aa7c1.d: crates/bench/src/bin/miss_probe.rs

/root/repo/target/release/deps/miss_probe-36aeff96649aa7c1: crates/bench/src/bin/miss_probe.rs

crates/bench/src/bin/miss_probe.rs:
