/root/repo/target/release/deps/odp_core-62ec4c3f731a05eb.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/release/deps/odp_core-62ec4c3f731a05eb: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
