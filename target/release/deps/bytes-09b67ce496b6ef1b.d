/root/repo/target/release/deps/bytes-09b67ce496b6ef1b.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-09b67ce496b6ef1b.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-09b67ce496b6ef1b.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
