/root/repo/target/release/deps/odp_streams-29de33863e0c2375.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/release/deps/odp_streams-29de33863e0c2375: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
