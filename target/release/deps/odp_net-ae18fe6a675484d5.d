/root/repo/target/release/deps/odp_net-ae18fe6a675484d5.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libodp_net-ae18fe6a675484d5.rlib: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libodp_net-ae18fe6a675484d5.rmeta: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
