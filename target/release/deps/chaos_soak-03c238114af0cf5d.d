/root/repo/target/release/deps/chaos_soak-03c238114af0cf5d.d: crates/odp/../../tests/chaos_soak.rs

/root/repo/target/release/deps/chaos_soak-03c238114af0cf5d: crates/odp/../../tests/chaos_soak.rs

crates/odp/../../tests/chaos_soak.rs:
