/root/repo/target/release/deps/odp_bench-c64daa54f7be2ef7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libodp_bench-c64daa54f7be2ef7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libodp_bench-c64daa54f7be2ef7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
