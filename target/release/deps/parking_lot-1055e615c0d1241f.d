/root/repo/target/release/deps/parking_lot-1055e615c0d1241f.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1055e615c0d1241f.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1055e615c0d1241f.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
