/root/repo/target/release/deps/odp_types-dae0b17761b8ac79.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/release/deps/odp_types-dae0b17761b8ac79: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
