/root/repo/target/release/deps/transactions-f3346c13f9fc97e9.d: crates/tx/tests/transactions.rs

/root/repo/target/release/deps/transactions-f3346c13f9fc97e9: crates/tx/tests/transactions.rs

crates/tx/tests/transactions.rs:
