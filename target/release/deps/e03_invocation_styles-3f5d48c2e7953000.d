/root/repo/target/release/deps/e03_invocation_styles-3f5d48c2e7953000.d: crates/bench/benches/e03_invocation_styles.rs

/root/repo/target/release/deps/e03_invocation_styles-3f5d48c2e7953000: crates/bench/benches/e03_invocation_styles.rs

crates/bench/benches/e03_invocation_styles.rs:
