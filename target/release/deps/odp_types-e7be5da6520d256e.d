/root/repo/target/release/deps/odp_types-e7be5da6520d256e.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/release/deps/libodp_types-e7be5da6520d256e.rlib: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/release/deps/libodp_types-e7be5da6520d256e.rmeta: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
