/root/repo/target/release/deps/zero_copy_fastpath-6be1aca9d2d69016.d: crates/odp/../../tests/zero_copy_fastpath.rs

/root/repo/target/release/deps/zero_copy_fastpath-6be1aca9d2d69016: crates/odp/../../tests/zero_copy_fastpath.rs

crates/odp/../../tests/zero_copy_fastpath.rs:
