/root/repo/target/release/deps/odp_trading-efc89b646d93c739.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/release/deps/libodp_trading-efc89b646d93c739.rlib: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/release/deps/libodp_trading-efc89b646d93c739.rmeta: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
