/root/repo/target/release/deps/odp_storage-af9545e2ff34caaf.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libodp_storage-af9545e2ff34caaf.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libodp_storage-af9545e2ff34caaf.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
