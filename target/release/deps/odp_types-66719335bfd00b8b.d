/root/repo/target/release/deps/odp_types-66719335bfd00b8b.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/release/deps/libodp_types-66719335bfd00b8b.rlib: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/release/deps/libodp_types-66719335bfd00b8b.rmeta: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
