/root/repo/target/release/deps/parking_lot-a2c8859e8d50f420.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2c8859e8d50f420.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-a2c8859e8d50f420.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
