/root/repo/target/release/deps/e02_marshalling-7a60691bfdb7f358.d: crates/bench/benches/e02_marshalling.rs

/root/repo/target/release/deps/e02_marshalling-7a60691bfdb7f358: crates/bench/benches/e02_marshalling.rs

crates/bench/benches/e02_marshalling.rs:
