/root/repo/target/release/deps/odp_telemetry-68a9314a926aa75c.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs

/root/repo/target/release/deps/odp_telemetry-68a9314a926aa75c: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/hub.rs:
crates/telemetry/src/metrics.rs:
