/root/repo/target/release/deps/odp_telemetry-eb123ed3a01efc20.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

/root/repo/target/release/deps/libodp_telemetry-eb123ed3a01efc20.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

/root/repo/target/release/deps/libodp_telemetry-eb123ed3a01efc20.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/hub.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/wire_stats.rs:
