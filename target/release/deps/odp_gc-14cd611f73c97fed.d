/root/repo/target/release/deps/odp_gc-14cd611f73c97fed.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/release/deps/libodp_gc-14cd611f73c97fed.rlib: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/release/deps/libodp_gc-14cd611f73c97fed.rmeta: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
