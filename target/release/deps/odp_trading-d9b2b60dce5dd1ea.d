/root/repo/target/release/deps/odp_trading-d9b2b60dce5dd1ea.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/release/deps/odp_trading-d9b2b60dce5dd1ea: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
