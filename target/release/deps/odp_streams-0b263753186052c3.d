/root/repo/target/release/deps/odp_streams-0b263753186052c3.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/release/deps/libodp_streams-0b263753186052c3.rlib: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/release/deps/libodp_streams-0b263753186052c3.rmeta: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
