/root/repo/target/release/deps/odp_federation-1898bab21990f6ca.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/release/deps/libodp_federation-1898bab21990f6ca.rlib: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/release/deps/libodp_federation-1898bab21990f6ca.rmeta: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
