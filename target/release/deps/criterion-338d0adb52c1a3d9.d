/root/repo/target/release/deps/criterion-338d0adb52c1a3d9.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-338d0adb52c1a3d9.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-338d0adb52c1a3d9.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
