/root/repo/target/release/deps/odp_storage-dda8ed36a44499a4.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/odp_storage-dda8ed36a44499a4: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
