/root/repo/target/release/deps/e16_telemetry-e0853844985c5a11.d: crates/bench/benches/e16_telemetry.rs

/root/repo/target/release/deps/e16_telemetry-e0853844985c5a11: crates/bench/benches/e16_telemetry.rs

crates/bench/benches/e16_telemetry.rs:
