/root/repo/target/release/deps/boundaries-5f12f35000e9075c.d: crates/federation/tests/boundaries.rs

/root/repo/target/release/deps/boundaries-5f12f35000e9075c: crates/federation/tests/boundaries.rs

crates/federation/tests/boundaries.rs:
