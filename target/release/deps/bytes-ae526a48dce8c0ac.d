/root/repo/target/release/deps/bytes-ae526a48dce8c0ac.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ae526a48dce8c0ac.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ae526a48dce8c0ac.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
