/root/repo/target/release/deps/odp_chaos-e9091ce8219357a0.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/release/deps/libodp_chaos-e9091ce8219357a0.rlib: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/release/deps/libodp_chaos-e9091ce8219357a0.rmeta: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
