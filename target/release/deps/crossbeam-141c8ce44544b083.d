/root/repo/target/release/deps/crossbeam-141c8ce44544b083.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-141c8ce44544b083.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-141c8ce44544b083.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
