/root/repo/target/release/deps/odp_wire-785944cac30880cb.d: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/release/deps/libodp_wire-785944cac30880cb.rlib: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/release/deps/libodp_wire-785944cac30880cb.rmeta: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/decode.rs:
crates/wire/src/encode.rs:
crates/wire/src/ifref.rs:
crates/wire/src/pool.rs:
crates/wire/src/trace.rs:
crates/wire/src/typecheck.rs:
crates/wire/src/value.rs:
