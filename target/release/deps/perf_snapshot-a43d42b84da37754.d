/root/repo/target/release/deps/perf_snapshot-a43d42b84da37754.d: crates/bench/src/bin/perf_snapshot.rs

/root/repo/target/release/deps/perf_snapshot-a43d42b84da37754: crates/bench/src/bin/perf_snapshot.rs

crates/bench/src/bin/perf_snapshot.rs:
