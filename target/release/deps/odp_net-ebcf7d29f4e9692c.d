/root/repo/target/release/deps/odp_net-ebcf7d29f4e9692c.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libodp_net-ebcf7d29f4e9692c.rlib: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libodp_net-ebcf7d29f4e9692c.rmeta: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
