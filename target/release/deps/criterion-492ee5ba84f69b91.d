/root/repo/target/release/deps/criterion-492ee5ba84f69b91.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-492ee5ba84f69b91.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-492ee5ba84f69b91.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
