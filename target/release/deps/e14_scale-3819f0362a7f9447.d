/root/repo/target/release/deps/e14_scale-3819f0362a7f9447.d: crates/bench/benches/e14_scale.rs

/root/repo/target/release/deps/e14_scale-3819f0362a7f9447: crates/bench/benches/e14_scale.rs

crates/bench/benches/e14_scale.rs:
