/root/repo/target/release/deps/recovery-64fd005317f6df69.d: crates/storage/tests/recovery.rs

/root/repo/target/release/deps/recovery-64fd005317f6df69: crates/storage/tests/recovery.rs

crates/storage/tests/recovery.rs:
