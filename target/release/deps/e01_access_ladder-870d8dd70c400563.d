/root/repo/target/release/deps/e01_access_ladder-870d8dd70c400563.d: crates/bench/benches/e01_access_ladder.rs

/root/repo/target/release/deps/e01_access_ladder-870d8dd70c400563: crates/bench/benches/e01_access_ladder.rs

crates/bench/benches/e01_access_ladder.rs:
