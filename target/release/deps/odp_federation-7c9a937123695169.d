/root/repo/target/release/deps/odp_federation-7c9a937123695169.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/release/deps/libodp_federation-7c9a937123695169.rlib: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/release/deps/libodp_federation-7c9a937123695169.rmeta: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
