/root/repo/target/release/deps/crossbeam-6e578b0ed4112106.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6e578b0ed4112106.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-6e578b0ed4112106.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
