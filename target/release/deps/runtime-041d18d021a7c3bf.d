/root/repo/target/release/deps/runtime-041d18d021a7c3bf.d: crates/core/tests/runtime.rs

/root/repo/target/release/deps/runtime-041d18d021a7c3bf: crates/core/tests/runtime.rs

crates/core/tests/runtime.rs:
