/root/repo/target/release/deps/odp_chaos-1a5f4790ee0f42a0.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/release/deps/odp_chaos-1a5f4790ee0f42a0: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
