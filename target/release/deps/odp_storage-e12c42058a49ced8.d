/root/repo/target/release/deps/odp_storage-e12c42058a49ced8.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libodp_storage-e12c42058a49ced8.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libodp_storage-e12c42058a49ced8.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
