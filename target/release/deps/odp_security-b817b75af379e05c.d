/root/repo/target/release/deps/odp_security-b817b75af379e05c.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/release/deps/libodp_security-b817b75af379e05c.rlib: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/release/deps/libodp_security-b817b75af379e05c.rmeta: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
