/root/repo/target/release/deps/odp_wire-517572ac85ccd77c.d: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/release/deps/odp_wire-517572ac85ccd77c: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/decode.rs:
crates/wire/src/encode.rs:
crates/wire/src/ifref.rs:
crates/wire/src/trace.rs:
crates/wire/src/typecheck.rs:
crates/wire/src/value.rs:
