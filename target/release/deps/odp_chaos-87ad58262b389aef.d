/root/repo/target/release/deps/odp_chaos-87ad58262b389aef.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/release/deps/libodp_chaos-87ad58262b389aef.rlib: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/release/deps/libodp_chaos-87ad58262b389aef.rmeta: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
