/root/repo/target/release/deps/partition_heal-e8cbbd2e94091d5f.d: crates/groups/tests/partition_heal.rs

/root/repo/target/release/deps/partition_heal-e8cbbd2e94091d5f: crates/groups/tests/partition_heal.rs

crates/groups/tests/partition_heal.rs:
