/root/repo/target/release/deps/odp_tx-8284d48335ba7011.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/release/deps/libodp_tx-8284d48335ba7011.rlib: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/release/deps/libodp_tx-8284d48335ba7011.rmeta: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
