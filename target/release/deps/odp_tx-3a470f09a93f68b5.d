/root/repo/target/release/deps/odp_tx-3a470f09a93f68b5.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/release/deps/odp_tx-3a470f09a93f68b5: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
