/root/repo/target/debug/examples/fault_tolerant_ledger-d73fdec262b9bfa0.d: crates/odp/../../examples/fault_tolerant_ledger.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerant_ledger-d73fdec262b9bfa0.rmeta: crates/odp/../../examples/fault_tolerant_ledger.rs Cargo.toml

crates/odp/../../examples/fault_tolerant_ledger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
