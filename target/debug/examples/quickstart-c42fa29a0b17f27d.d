/root/repo/target/debug/examples/quickstart-c42fa29a0b17f27d.d: crates/odp/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c42fa29a0b17f27d: crates/odp/../../examples/quickstart.rs

crates/odp/../../examples/quickstart.rs:
