/root/repo/target/debug/examples/quickstart-1870e5d5f245adc5.d: crates/odp/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1870e5d5f245adc5.rmeta: crates/odp/../../examples/quickstart.rs Cargo.toml

crates/odp/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
