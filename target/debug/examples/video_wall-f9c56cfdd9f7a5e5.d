/root/repo/target/debug/examples/video_wall-f9c56cfdd9f7a5e5.d: crates/odp/../../examples/video_wall.rs Cargo.toml

/root/repo/target/debug/examples/libvideo_wall-f9c56cfdd9f7a5e5.rmeta: crates/odp/../../examples/video_wall.rs Cargo.toml

crates/odp/../../examples/video_wall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
