/root/repo/target/debug/examples/federated_printing-3e9459cba75a380e.d: crates/odp/../../examples/federated_printing.rs

/root/repo/target/debug/examples/federated_printing-3e9459cba75a380e: crates/odp/../../examples/federated_printing.rs

crates/odp/../../examples/federated_printing.rs:
