/root/repo/target/debug/examples/federated_printing-9daa4f8fe3e0108c.d: crates/odp/../../examples/federated_printing.rs Cargo.toml

/root/repo/target/debug/examples/libfederated_printing-9daa4f8fe3e0108c.rmeta: crates/odp/../../examples/federated_printing.rs Cargo.toml

crates/odp/../../examples/federated_printing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
