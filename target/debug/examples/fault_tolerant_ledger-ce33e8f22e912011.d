/root/repo/target/debug/examples/fault_tolerant_ledger-ce33e8f22e912011.d: crates/odp/../../examples/fault_tolerant_ledger.rs

/root/repo/target/debug/examples/fault_tolerant_ledger-ce33e8f22e912011: crates/odp/../../examples/fault_tolerant_ledger.rs

crates/odp/../../examples/fault_tolerant_ledger.rs:
