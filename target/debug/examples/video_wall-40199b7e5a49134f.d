/root/repo/target/debug/examples/video_wall-40199b7e5a49134f.d: crates/odp/../../examples/video_wall.rs

/root/repo/target/debug/examples/video_wall-40199b7e5a49134f: crates/odp/../../examples/video_wall.rs

crates/odp/../../examples/video_wall.rs:
