/root/repo/target/debug/examples/trace_demo-41a6107ef6f0db12.d: crates/odp/../../examples/trace_demo.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_demo-41a6107ef6f0db12.rmeta: crates/odp/../../examples/trace_demo.rs Cargo.toml

crates/odp/../../examples/trace_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
