/root/repo/target/debug/examples/banking_transactions-2018c15a6edf84ef.d: crates/odp/../../examples/banking_transactions.rs

/root/repo/target/debug/examples/banking_transactions-2018c15a6edf84ef: crates/odp/../../examples/banking_transactions.rs

crates/odp/../../examples/banking_transactions.rs:
