/root/repo/target/debug/examples/banking_transactions-e8dee568032d420f.d: crates/odp/../../examples/banking_transactions.rs Cargo.toml

/root/repo/target/debug/examples/libbanking_transactions-e8dee568032d420f.rmeta: crates/odp/../../examples/banking_transactions.rs Cargo.toml

crates/odp/../../examples/banking_transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
