/root/repo/target/debug/examples/trace_demo-687d274344639cfe.d: crates/odp/../../examples/trace_demo.rs

/root/repo/target/debug/examples/trace_demo-687d274344639cfe: crates/odp/../../examples/trace_demo.rs

crates/odp/../../examples/trace_demo.rs:
