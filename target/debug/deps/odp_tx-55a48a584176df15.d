/root/repo/target/debug/deps/odp_tx-55a48a584176df15.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/debug/deps/libodp_tx-55a48a584176df15.rlib: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/debug/deps/libodp_tx-55a48a584176df15.rmeta: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
