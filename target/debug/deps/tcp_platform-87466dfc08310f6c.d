/root/repo/target/debug/deps/tcp_platform-87466dfc08310f6c.d: crates/odp/../../tests/tcp_platform.rs

/root/repo/target/debug/deps/tcp_platform-87466dfc08310f6c: crates/odp/../../tests/tcp_platform.rs

crates/odp/../../tests/tcp_platform.rs:
