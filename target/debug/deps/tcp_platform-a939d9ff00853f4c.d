/root/repo/target/debug/deps/tcp_platform-a939d9ff00853f4c.d: crates/odp/../../tests/tcp_platform.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_platform-a939d9ff00853f4c.rmeta: crates/odp/../../tests/tcp_platform.rs Cargo.toml

crates/odp/../../tests/tcp_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
