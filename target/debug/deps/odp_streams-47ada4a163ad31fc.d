/root/repo/target/debug/deps/odp_streams-47ada4a163ad31fc.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libodp_streams-47ada4a163ad31fc.rmeta: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs Cargo.toml

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
