/root/repo/target/debug/deps/odp_gc-aec3da2f95fc56e8.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/debug/deps/odp_gc-aec3da2f95fc56e8: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
