/root/repo/target/debug/deps/odp_core-5a00150577e5dd7b.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/debug/deps/odp_core-5a00150577e5dd7b: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
