/root/repo/target/debug/deps/odp_core-816285d56e21def0.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/debug/deps/libodp_core-816285d56e21def0.rlib: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

/root/repo/target/debug/deps/libodp_core-816285d56e21def0.rmeta: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
