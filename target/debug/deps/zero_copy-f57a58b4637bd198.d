/root/repo/target/debug/deps/zero_copy-f57a58b4637bd198.d: crates/wire/tests/zero_copy.rs

/root/repo/target/debug/deps/zero_copy-f57a58b4637bd198: crates/wire/tests/zero_copy.rs

crates/wire/tests/zero_copy.rs:
