/root/repo/target/debug/deps/e08_relocation-baf4291ed51e41c9.d: crates/bench/benches/e08_relocation.rs Cargo.toml

/root/repo/target/debug/deps/libe08_relocation-baf4291ed51e41c9.rmeta: crates/bench/benches/e08_relocation.rs Cargo.toml

crates/bench/benches/e08_relocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
