/root/repo/target/debug/deps/e07_trading-f191a4defe1af4e5.d: crates/bench/benches/e07_trading.rs Cargo.toml

/root/repo/target/debug/deps/libe07_trading-f191a4defe1af4e5.rmeta: crates/bench/benches/e07_trading.rs Cargo.toml

crates/bench/benches/e07_trading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
