/root/repo/target/debug/deps/platform_properties-587fa90e124356ab.d: crates/odp/../../tests/platform_properties.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_properties-587fa90e124356ab.rmeta: crates/odp/../../tests/platform_properties.rs Cargo.toml

crates/odp/../../tests/platform_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
