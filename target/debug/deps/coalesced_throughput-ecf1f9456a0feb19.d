/root/repo/target/debug/deps/coalesced_throughput-ecf1f9456a0feb19.d: crates/net/tests/coalesced_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libcoalesced_throughput-ecf1f9456a0feb19.rmeta: crates/net/tests/coalesced_throughput.rs Cargo.toml

crates/net/tests/coalesced_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
