/root/repo/target/debug/deps/chaos_soak-ec32059cbb2e0480.d: crates/odp/../../tests/chaos_soak.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_soak-ec32059cbb2e0480.rmeta: crates/odp/../../tests/chaos_soak.rs Cargo.toml

crates/odp/../../tests/chaos_soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
