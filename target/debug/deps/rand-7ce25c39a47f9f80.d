/root/repo/target/debug/deps/rand-7ce25c39a47f9f80.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7ce25c39a47f9f80.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7ce25c39a47f9f80.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
