/root/repo/target/debug/deps/recovery-3e1083e7fff8d9ec.d: crates/storage/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-3e1083e7fff8d9ec.rmeta: crates/storage/tests/recovery.rs Cargo.toml

crates/storage/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
