/root/repo/target/debug/deps/odp_bench-a4d0c7b229235a56.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/odp_bench-a4d0c7b229235a56: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
