/root/repo/target/debug/deps/odp_federation-53460a1a5b17e2e8.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/debug/deps/libodp_federation-53460a1a5b17e2e8.rlib: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/debug/deps/libodp_federation-53460a1a5b17e2e8.rmeta: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
