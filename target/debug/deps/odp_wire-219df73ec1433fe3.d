/root/repo/target/debug/deps/odp_wire-219df73ec1433fe3.d: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libodp_wire-219df73ec1433fe3.rmeta: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/decode.rs:
crates/wire/src/encode.rs:
crates/wire/src/ifref.rs:
crates/wire/src/pool.rs:
crates/wire/src/trace.rs:
crates/wire/src/typecheck.rs:
crates/wire/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
