/root/repo/target/debug/deps/odp_types-e681d89a6ddfa71b.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/debug/deps/odp_types-e681d89a6ddfa71b: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
