/root/repo/target/debug/deps/odp_trading-16affbafbe9d2ac3.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/debug/deps/libodp_trading-16affbafbe9d2ac3.rlib: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/debug/deps/libodp_trading-16affbafbe9d2ac3.rmeta: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
