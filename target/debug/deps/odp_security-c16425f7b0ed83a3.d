/root/repo/target/debug/deps/odp_security-c16425f7b0ed83a3.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/debug/deps/odp_security-c16425f7b0ed83a3: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
