/root/repo/target/debug/deps/odp_groups-e32e33a45c9cd5d3.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs Cargo.toml

/root/repo/target/debug/deps/libodp_groups-e32e33a45c9cd5d3.rmeta: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs Cargo.toml

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
