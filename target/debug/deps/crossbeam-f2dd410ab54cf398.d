/root/repo/target/debug/deps/crossbeam-f2dd410ab54cf398.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f2dd410ab54cf398.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f2dd410ab54cf398.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
