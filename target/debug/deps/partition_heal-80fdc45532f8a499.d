/root/repo/target/debug/deps/partition_heal-80fdc45532f8a499.d: crates/groups/tests/partition_heal.rs Cargo.toml

/root/repo/target/debug/deps/libpartition_heal-80fdc45532f8a499.rmeta: crates/groups/tests/partition_heal.rs Cargo.toml

crates/groups/tests/partition_heal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
