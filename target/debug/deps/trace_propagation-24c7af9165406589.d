/root/repo/target/debug/deps/trace_propagation-24c7af9165406589.d: crates/odp/../../tests/trace_propagation.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_propagation-24c7af9165406589.rmeta: crates/odp/../../tests/trace_propagation.rs Cargo.toml

crates/odp/../../tests/trace_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
