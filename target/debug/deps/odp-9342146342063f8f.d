/root/repo/target/debug/deps/odp-9342146342063f8f.d: crates/odp/src/lib.rs

/root/repo/target/debug/deps/libodp-9342146342063f8f.rlib: crates/odp/src/lib.rs

/root/repo/target/debug/deps/libodp-9342146342063f8f.rmeta: crates/odp/src/lib.rs

crates/odp/src/lib.rs:
