/root/repo/target/debug/deps/odp_chaos-7a71c738ffe2c875.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/debug/deps/odp_chaos-7a71c738ffe2c875: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
