/root/repo/target/debug/deps/odp_trading-5a2b0e9982bf6c45.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

/root/repo/target/debug/deps/odp_trading-5a2b0e9982bf6c45: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
