/root/repo/target/debug/deps/runtime-3cacb566455f5462.d: crates/core/tests/runtime.rs

/root/repo/target/debug/deps/runtime-3cacb566455f5462: crates/core/tests/runtime.rs

crates/core/tests/runtime.rs:
