/root/repo/target/debug/deps/odp_federation-6ffff3b52c8812cc.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libodp_federation-6ffff3b52c8812cc.rmeta: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs Cargo.toml

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
