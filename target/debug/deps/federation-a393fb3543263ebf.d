/root/repo/target/debug/deps/federation-a393fb3543263ebf.d: crates/trading/tests/federation.rs Cargo.toml

/root/repo/target/debug/deps/libfederation-a393fb3543263ebf.rmeta: crates/trading/tests/federation.rs Cargo.toml

crates/trading/tests/federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
