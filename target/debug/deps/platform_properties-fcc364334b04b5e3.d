/root/repo/target/debug/deps/platform_properties-fcc364334b04b5e3.d: crates/odp/../../tests/platform_properties.rs

/root/repo/target/debug/deps/platform_properties-fcc364334b04b5e3: crates/odp/../../tests/platform_properties.rs

crates/odp/../../tests/platform_properties.rs:
