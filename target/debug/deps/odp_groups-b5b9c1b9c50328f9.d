/root/repo/target/debug/deps/odp_groups-b5b9c1b9c50328f9.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs Cargo.toml

/root/repo/target/debug/deps/libodp_groups-b5b9c1b9c50328f9.rmeta: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs Cargo.toml

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
