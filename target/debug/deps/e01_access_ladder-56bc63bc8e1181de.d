/root/repo/target/debug/deps/e01_access_ladder-56bc63bc8e1181de.d: crates/bench/benches/e01_access_ladder.rs Cargo.toml

/root/repo/target/debug/deps/libe01_access_ladder-56bc63bc8e1181de.rmeta: crates/bench/benches/e01_access_ladder.rs Cargo.toml

crates/bench/benches/e01_access_ladder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
