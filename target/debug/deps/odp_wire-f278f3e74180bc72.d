/root/repo/target/debug/deps/odp_wire-f278f3e74180bc72.d: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libodp_wire-f278f3e74180bc72.rlib: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libodp_wire-f278f3e74180bc72.rmeta: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/decode.rs:
crates/wire/src/encode.rs:
crates/wire/src/ifref.rs:
crates/wire/src/pool.rs:
crates/wire/src/trace.rs:
crates/wire/src/typecheck.rs:
crates/wire/src/value.rs:
