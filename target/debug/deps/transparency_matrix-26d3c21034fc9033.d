/root/repo/target/debug/deps/transparency_matrix-26d3c21034fc9033.d: crates/odp/../../tests/transparency_matrix.rs

/root/repo/target/debug/deps/transparency_matrix-26d3c21034fc9033: crates/odp/../../tests/transparency_matrix.rs

crates/odp/../../tests/transparency_matrix.rs:
