/root/repo/target/debug/deps/crossbeam-22ac929c5a09f7b9.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-22ac929c5a09f7b9.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
