/root/repo/target/debug/deps/odp_bench-bd00cae8666ee39e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libodp_bench-bd00cae8666ee39e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
