/root/repo/target/debug/deps/chaos_soak-5e55a7488f431e8b.d: crates/odp/../../tests/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-5e55a7488f431e8b: crates/odp/../../tests/chaos_soak.rs

crates/odp/../../tests/chaos_soak.rs:
