/root/repo/target/debug/deps/odp_streams-77b80633614fc394.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/debug/deps/libodp_streams-77b80633614fc394.rlib: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/debug/deps/libodp_streams-77b80633614fc394.rmeta: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
