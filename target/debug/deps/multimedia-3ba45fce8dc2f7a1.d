/root/repo/target/debug/deps/multimedia-3ba45fce8dc2f7a1.d: crates/streams/tests/multimedia.rs

/root/repo/target/debug/deps/multimedia-3ba45fce8dc2f7a1: crates/streams/tests/multimedia.rs

crates/streams/tests/multimedia.rs:
