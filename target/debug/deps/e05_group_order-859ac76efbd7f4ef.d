/root/repo/target/debug/deps/e05_group_order-859ac76efbd7f4ef.d: crates/bench/benches/e05_group_order.rs Cargo.toml

/root/repo/target/debug/deps/libe05_group_order-859ac76efbd7f4ef.rmeta: crates/bench/benches/e05_group_order.rs Cargo.toml

crates/bench/benches/e05_group_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
