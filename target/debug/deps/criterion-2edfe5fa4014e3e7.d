/root/repo/target/debug/deps/criterion-2edfe5fa4014e3e7.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2edfe5fa4014e3e7.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
