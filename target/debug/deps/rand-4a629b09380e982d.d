/root/repo/target/debug/deps/rand-4a629b09380e982d.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4a629b09380e982d.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
