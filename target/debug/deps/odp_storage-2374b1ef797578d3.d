/root/repo/target/debug/deps/odp_storage-2374b1ef797578d3.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/odp_storage-2374b1ef797578d3: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
