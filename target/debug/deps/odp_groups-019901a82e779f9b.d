/root/repo/target/debug/deps/odp_groups-019901a82e779f9b.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/debug/deps/odp_groups-019901a82e779f9b: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
