/root/repo/target/debug/deps/odp-d959a662c55f29e0.d: crates/odp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libodp-d959a662c55f29e0.rmeta: crates/odp/src/lib.rs Cargo.toml

crates/odp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
