/root/repo/target/debug/deps/bytes-5b31798f44ae5ebf.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-5b31798f44ae5ebf.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
