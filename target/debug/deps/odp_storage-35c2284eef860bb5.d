/root/repo/target/debug/deps/odp_storage-35c2284eef860bb5.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libodp_storage-35c2284eef860bb5.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
