/root/repo/target/debug/deps/platform_integration-0f5b7fb41c0d9610.d: crates/odp/../../tests/platform_integration.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_integration-0f5b7fb41c0d9610.rmeta: crates/odp/../../tests/platform_integration.rs Cargo.toml

crates/odp/../../tests/platform_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
