/root/repo/target/debug/deps/multimedia-76796cd657c2197a.d: crates/streams/tests/multimedia.rs Cargo.toml

/root/repo/target/debug/deps/libmultimedia-76796cd657c2197a.rmeta: crates/streams/tests/multimedia.rs Cargo.toml

crates/streams/tests/multimedia.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
