/root/repo/target/debug/deps/e06_transactions-18f032c58d1fbd60.d: crates/bench/benches/e06_transactions.rs Cargo.toml

/root/repo/target/debug/deps/libe06_transactions-18f032c58d1fbd60.rmeta: crates/bench/benches/e06_transactions.rs Cargo.toml

crates/bench/benches/e06_transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
