/root/repo/target/debug/deps/bytes-9539ec4a8cda8469.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9539ec4a8cda8469.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9539ec4a8cda8469.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
