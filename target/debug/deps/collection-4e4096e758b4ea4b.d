/root/repo/target/debug/deps/collection-4e4096e758b4ea4b.d: crates/gc/tests/collection.rs

/root/repo/target/debug/deps/collection-4e4096e758b4ea4b: crates/gc/tests/collection.rs

crates/gc/tests/collection.rs:
