/root/repo/target/debug/deps/odp_groups-e2ad5791dc466d20.d: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/debug/deps/libodp_groups-e2ad5791dc466d20.rlib: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

/root/repo/target/debug/deps/libodp_groups-e2ad5791dc466d20.rmeta: crates/groups/src/lib.rs crates/groups/src/client.rs crates/groups/src/member.rs crates/groups/src/replicate.rs crates/groups/src/view.rs crates/groups/src/voting.rs

crates/groups/src/lib.rs:
crates/groups/src/client.rs:
crates/groups/src/member.rs:
crates/groups/src/replicate.rs:
crates/groups/src/view.rs:
crates/groups/src/voting.rs:
