/root/repo/target/debug/deps/e04_replication-b2a60dec39010322.d: crates/bench/benches/e04_replication.rs Cargo.toml

/root/repo/target/debug/deps/libe04_replication-b2a60dec39010322.rmeta: crates/bench/benches/e04_replication.rs Cargo.toml

crates/bench/benches/e04_replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
