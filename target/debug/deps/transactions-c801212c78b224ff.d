/root/repo/target/debug/deps/transactions-c801212c78b224ff.d: crates/tx/tests/transactions.rs

/root/repo/target/debug/deps/transactions-c801212c78b224ff: crates/tx/tests/transactions.rs

crates/tx/tests/transactions.rs:
