/root/repo/target/debug/deps/odp_trading-8d6f18ffc5c42d82.d: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs Cargo.toml

/root/repo/target/debug/deps/libodp_trading-8d6f18ffc5c42d82.rmeta: crates/trading/src/lib.rs crates/trading/src/context_name.rs crates/trading/src/federation.rs crates/trading/src/offer.rs crates/trading/src/trader.rs Cargo.toml

crates/trading/src/lib.rs:
crates/trading/src/context_name.rs:
crates/trading/src/federation.rs:
crates/trading/src/offer.rs:
crates/trading/src/trader.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
