/root/repo/target/debug/deps/odp_types-64278426c3a09c5e.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/debug/deps/libodp_types-64278426c3a09c5e.rlib: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

/root/repo/target/debug/deps/libodp_types-64278426c3a09c5e.rmeta: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
