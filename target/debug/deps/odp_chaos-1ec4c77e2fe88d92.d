/root/repo/target/debug/deps/odp_chaos-1ec4c77e2fe88d92.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/debug/deps/libodp_chaos-1ec4c77e2fe88d92.rlib: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

/root/repo/target/debug/deps/libodp_chaos-1ec4c77e2fe88d92.rmeta: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
