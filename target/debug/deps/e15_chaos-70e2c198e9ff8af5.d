/root/repo/target/debug/deps/e15_chaos-70e2c198e9ff8af5.d: crates/bench/benches/e15_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libe15_chaos-70e2c198e9ff8af5.rmeta: crates/bench/benches/e15_chaos.rs Cargo.toml

crates/bench/benches/e15_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
