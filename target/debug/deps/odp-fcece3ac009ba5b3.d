/root/repo/target/debug/deps/odp-fcece3ac009ba5b3.d: crates/odp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libodp-fcece3ac009ba5b3.rmeta: crates/odp/src/lib.rs Cargo.toml

crates/odp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
