/root/repo/target/debug/deps/odp_core-bf8986c4c491e774.d: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libodp_core-bf8986c4c491e774.rmeta: crates/core/src/lib.rs crates/core/src/capsule.rs crates/core/src/invocation.rs crates/core/src/management.rs crates/core/src/node_manager.rs crates/core/src/object.rs crates/core/src/relocator.rs crates/core/src/transparency.rs crates/core/src/world.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/capsule.rs:
crates/core/src/invocation.rs:
crates/core/src/management.rs:
crates/core/src/node_manager.rs:
crates/core/src/object.rs:
crates/core/src/relocator.rs:
crates/core/src/transparency.rs:
crates/core/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
