/root/repo/target/debug/deps/odp_streams-d42cd26d9077a116.d: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

/root/repo/target/debug/deps/odp_streams-d42cd26d9077a116: crates/streams/src/lib.rs crates/streams/src/binding.rs crates/streams/src/endpoint.rs crates/streams/src/qos.rs crates/streams/src/stream.rs crates/streams/src/sync.rs

crates/streams/src/lib.rs:
crates/streams/src/binding.rs:
crates/streams/src/endpoint.rs:
crates/streams/src/qos.rs:
crates/streams/src/stream.rs:
crates/streams/src/sync.rs:
