/root/repo/target/debug/deps/odp-7ac83a07b90a6061.d: crates/odp/src/lib.rs

/root/repo/target/debug/deps/odp-7ac83a07b90a6061: crates/odp/src/lib.rs

crates/odp/src/lib.rs:
