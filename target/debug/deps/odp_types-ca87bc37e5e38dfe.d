/root/repo/target/debug/deps/odp_types-ca87bc37e5e38dfe.d: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs Cargo.toml

/root/repo/target/debug/deps/libodp_types-ca87bc37e5e38dfe.rmeta: crates/types/src/lib.rs crates/types/src/conformance.rs crates/types/src/ids.rs crates/types/src/signature.rs crates/types/src/type_manager.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/conformance.rs:
crates/types/src/ids.rs:
crates/types/src/signature.rs:
crates/types/src/type_manager.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
