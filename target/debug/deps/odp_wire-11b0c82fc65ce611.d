/root/repo/target/debug/deps/odp_wire-11b0c82fc65ce611.d: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/odp_wire-11b0c82fc65ce611: crates/wire/src/lib.rs crates/wire/src/decode.rs crates/wire/src/encode.rs crates/wire/src/ifref.rs crates/wire/src/pool.rs crates/wire/src/trace.rs crates/wire/src/typecheck.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/decode.rs:
crates/wire/src/encode.rs:
crates/wire/src/ifref.rs:
crates/wire/src/pool.rs:
crates/wire/src/trace.rs:
crates/wire/src/typecheck.rs:
crates/wire/src/value.rs:
