/root/repo/target/debug/deps/odp_telemetry-b545a5f2da5f663f.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

/root/repo/target/debug/deps/libodp_telemetry-b545a5f2da5f663f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

/root/repo/target/debug/deps/libodp_telemetry-b545a5f2da5f663f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/hub.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/wire_stats.rs:
