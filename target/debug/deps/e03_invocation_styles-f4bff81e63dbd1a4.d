/root/repo/target/debug/deps/e03_invocation_styles-f4bff81e63dbd1a4.d: crates/bench/benches/e03_invocation_styles.rs Cargo.toml

/root/repo/target/debug/deps/libe03_invocation_styles-f4bff81e63dbd1a4.rmeta: crates/bench/benches/e03_invocation_styles.rs Cargo.toml

crates/bench/benches/e03_invocation_styles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
