/root/repo/target/debug/deps/odp_telemetry-69fcce2d0be1b024.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs Cargo.toml

/root/repo/target/debug/deps/libodp_telemetry-69fcce2d0be1b024.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/hub.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/wire_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
