/root/repo/target/debug/deps/e11_security-0c41c3d3e4693a17.d: crates/bench/benches/e11_security.rs Cargo.toml

/root/repo/target/debug/deps/libe11_security-0c41c3d3e4693a17.rmeta: crates/bench/benches/e11_security.rs Cargo.toml

crates/bench/benches/e11_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
