/root/repo/target/debug/deps/odp_telemetry-faab80c99234c4c2.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

/root/repo/target/debug/deps/odp_telemetry-faab80c99234c4c2: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/hub.rs crates/telemetry/src/metrics.rs crates/telemetry/src/wire_stats.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/hub.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/wire_stats.rs:
