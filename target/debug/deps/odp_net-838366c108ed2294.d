/root/repo/target/debug/deps/odp_net-838366c108ed2294.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/odp_net-838366c108ed2294: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
