/root/repo/target/debug/deps/odp_tx-c2705613904cec78.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

/root/repo/target/debug/deps/odp_tx-c2705613904cec78: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
