/root/repo/target/debug/deps/odp_security-d318db930d28fcb1.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs Cargo.toml

/root/repo/target/debug/deps/libodp_security-d318db930d28fcb1.rmeta: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs Cargo.toml

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
