/root/repo/target/debug/deps/odp_gc-7c55ee421aabdab1.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/debug/deps/libodp_gc-7c55ee421aabdab1.rlib: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

/root/repo/target/debug/deps/libodp_gc-7c55ee421aabdab1.rmeta: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
