/root/repo/target/debug/deps/transactions-a4ef8bf0ce2ad3df.d: crates/tx/tests/transactions.rs Cargo.toml

/root/repo/target/debug/deps/libtransactions-a4ef8bf0ce2ad3df.rmeta: crates/tx/tests/transactions.rs Cargo.toml

crates/tx/tests/transactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
