/root/repo/target/debug/deps/n_version-6496d08b9f77085e.d: crates/groups/tests/n_version.rs Cargo.toml

/root/repo/target/debug/deps/libn_version-6496d08b9f77085e.rmeta: crates/groups/tests/n_version.rs Cargo.toml

crates/groups/tests/n_version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
