/root/repo/target/debug/deps/e02_marshalling-b23de45808deb01e.d: crates/bench/benches/e02_marshalling.rs Cargo.toml

/root/repo/target/debug/deps/libe02_marshalling-b23de45808deb01e.rmeta: crates/bench/benches/e02_marshalling.rs Cargo.toml

crates/bench/benches/e02_marshalling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
