/root/repo/target/debug/deps/n_version-d8dd3e730cdaa69a.d: crates/groups/tests/n_version.rs

/root/repo/target/debug/deps/n_version-d8dd3e730cdaa69a: crates/groups/tests/n_version.rs

crates/groups/tests/n_version.rs:
