/root/repo/target/debug/deps/odp_security-a8683cb9104b4114.d: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/debug/deps/libodp_security-a8683cb9104b4114.rlib: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

/root/repo/target/debug/deps/libodp_security-a8683cb9104b4114.rmeta: crates/security/src/lib.rs crates/security/src/guard.rs crates/security/src/secret.rs crates/security/src/siphash.rs

crates/security/src/lib.rs:
crates/security/src/guard.rs:
crates/security/src/secret.rs:
crates/security/src/siphash.rs:
