/root/repo/target/debug/deps/odp_bench-0e83606c4238eb10.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libodp_bench-0e83606c4238eb10.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
