/root/repo/target/debug/deps/zero_copy_fastpath-6a67b16b320cd590.d: crates/odp/../../tests/zero_copy_fastpath.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy_fastpath-6a67b16b320cd590.rmeta: crates/odp/../../tests/zero_copy_fastpath.rs Cargo.toml

crates/odp/../../tests/zero_copy_fastpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
