/root/repo/target/debug/deps/replication-d1926df1f9b6987d.d: crates/groups/tests/replication.rs Cargo.toml

/root/repo/target/debug/deps/libreplication-d1926df1f9b6987d.rmeta: crates/groups/tests/replication.rs Cargo.toml

crates/groups/tests/replication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
