/root/repo/target/debug/deps/odp_chaos-c55d084ca5e23f87.d: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libodp_chaos-c55d084ca5e23f87.rmeta: crates/chaos/src/lib.rs crates/chaos/src/invariants.rs crates/chaos/src/runner.rs crates/chaos/src/schedule.rs crates/chaos/src/workload.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/invariants.rs:
crates/chaos/src/runner.rs:
crates/chaos/src/schedule.rs:
crates/chaos/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
