/root/repo/target/debug/deps/e14_scale-54859dd8555889aa.d: crates/bench/benches/e14_scale.rs Cargo.toml

/root/repo/target/debug/deps/libe14_scale-54859dd8555889aa.rmeta: crates/bench/benches/e14_scale.rs Cargo.toml

crates/bench/benches/e14_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
