/root/repo/target/debug/deps/traded_streams-5e20f0eb882a2170.d: crates/streams/tests/traded_streams.rs

/root/repo/target/debug/deps/traded_streams-5e20f0eb882a2170: crates/streams/tests/traded_streams.rs

crates/streams/tests/traded_streams.rs:
