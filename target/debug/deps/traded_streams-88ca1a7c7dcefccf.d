/root/repo/target/debug/deps/traded_streams-88ca1a7c7dcefccf.d: crates/streams/tests/traded_streams.rs Cargo.toml

/root/repo/target/debug/deps/libtraded_streams-88ca1a7c7dcefccf.rmeta: crates/streams/tests/traded_streams.rs Cargo.toml

crates/streams/tests/traded_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
