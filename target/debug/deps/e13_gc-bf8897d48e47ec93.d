/root/repo/target/debug/deps/e13_gc-bf8897d48e47ec93.d: crates/bench/benches/e13_gc.rs Cargo.toml

/root/repo/target/debug/deps/libe13_gc-bf8897d48e47ec93.rmeta: crates/bench/benches/e13_gc.rs Cargo.toml

crates/bench/benches/e13_gc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
