/root/repo/target/debug/deps/roundtrip_props-8434639e7c230d87.d: crates/wire/tests/roundtrip_props.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip_props-8434639e7c230d87.rmeta: crates/wire/tests/roundtrip_props.rs Cargo.toml

crates/wire/tests/roundtrip_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
