/root/repo/target/debug/deps/boundaries-1229977a81fe913e.d: crates/federation/tests/boundaries.rs

/root/repo/target/debug/deps/boundaries-1229977a81fe913e: crates/federation/tests/boundaries.rs

crates/federation/tests/boundaries.rs:
