/root/repo/target/debug/deps/perf_snapshot-e68fb05b86bfdfde.d: crates/bench/src/bin/perf_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libperf_snapshot-e68fb05b86bfdfde.rmeta: crates/bench/src/bin/perf_snapshot.rs Cargo.toml

crates/bench/src/bin/perf_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
