/root/repo/target/debug/deps/criterion-04602788ce906513.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-04602788ce906513.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-04602788ce906513.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
