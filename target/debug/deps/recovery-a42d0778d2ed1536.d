/root/repo/target/debug/deps/recovery-a42d0778d2ed1536.d: crates/storage/tests/recovery.rs

/root/repo/target/debug/deps/recovery-a42d0778d2ed1536: crates/storage/tests/recovery.rs

crates/storage/tests/recovery.rs:
