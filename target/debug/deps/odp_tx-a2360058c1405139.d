/root/repo/target/debug/deps/odp_tx-a2360058c1405139.d: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libodp_tx-a2360058c1405139.rmeta: crates/tx/src/lib.rs crates/tx/src/coordinator.rs crates/tx/src/deadlock.rs crates/tx/src/locks.rs crates/tx/src/runtime.rs Cargo.toml

crates/tx/src/lib.rs:
crates/tx/src/coordinator.rs:
crates/tx/src/deadlock.rs:
crates/tx/src/locks.rs:
crates/tx/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
