/root/repo/target/debug/deps/parking_lot-d81cfb34f49015c6.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d81cfb34f49015c6.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
