/root/repo/target/debug/deps/transport_contract-5a5551d58b49f0f8.d: crates/net/tests/transport_contract.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_contract-5a5551d58b49f0f8.rmeta: crates/net/tests/transport_contract.rs Cargo.toml

crates/net/tests/transport_contract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
