/root/repo/target/debug/deps/transport_contract-c6e62aa2682bca7f.d: crates/net/tests/transport_contract.rs

/root/repo/target/debug/deps/transport_contract-c6e62aa2682bca7f: crates/net/tests/transport_contract.rs

crates/net/tests/transport_contract.rs:
