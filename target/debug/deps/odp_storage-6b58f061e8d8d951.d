/root/repo/target/debug/deps/odp_storage-6b58f061e8d8d951.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/libodp_storage-6b58f061e8d8d951.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/libodp_storage-6b58f061e8d8d951.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/passivate.rs crates/storage/src/recovery.rs crates/storage/src/repository.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/passivate.rs:
crates/storage/src/recovery.rs:
crates/storage/src/repository.rs:
crates/storage/src/wal.rs:
