/root/repo/target/debug/deps/odp_net-d063a158616f3dc1.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libodp_net-d063a158616f3dc1.rmeta: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
