/root/repo/target/debug/deps/perf_snapshot-4ea295829ab99cba.d: crates/bench/src/bin/perf_snapshot.rs

/root/repo/target/debug/deps/perf_snapshot-4ea295829ab99cba: crates/bench/src/bin/perf_snapshot.rs

crates/bench/src/bin/perf_snapshot.rs:
