/root/repo/target/debug/deps/federation-3bcd1459d0d2e5df.d: crates/trading/tests/federation.rs

/root/repo/target/debug/deps/federation-3bcd1459d0d2e5df: crates/trading/tests/federation.rs

crates/trading/tests/federation.rs:
