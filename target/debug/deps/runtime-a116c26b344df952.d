/root/repo/target/debug/deps/runtime-a116c26b344df952.d: crates/core/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-a116c26b344df952.rmeta: crates/core/tests/runtime.rs Cargo.toml

crates/core/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
