/root/repo/target/debug/deps/e10_federation-1833d6294660bb98.d: crates/bench/benches/e10_federation.rs Cargo.toml

/root/repo/target/debug/deps/libe10_federation-1833d6294660bb98.rmeta: crates/bench/benches/e10_federation.rs Cargo.toml

crates/bench/benches/e10_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
