/root/repo/target/debug/deps/replication-58f9f111a6e5e542.d: crates/groups/tests/replication.rs

/root/repo/target/debug/deps/replication-58f9f111a6e5e542: crates/groups/tests/replication.rs

crates/groups/tests/replication.rs:
