/root/repo/target/debug/deps/odp_gc-ecf74de951a04a1c.d: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libodp_gc-ecf74de951a04a1c.rmeta: crates/gc/src/lib.rs crates/gc/src/collector.rs crates/gc/src/idle.rs crates/gc/src/lease.rs crates/gc/src/registry.rs Cargo.toml

crates/gc/src/lib.rs:
crates/gc/src/collector.rs:
crates/gc/src/idle.rs:
crates/gc/src/lease.rs:
crates/gc/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
