/root/repo/target/debug/deps/transparency_matrix-f8c8e71796cf79e7.d: crates/odp/../../tests/transparency_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtransparency_matrix-f8c8e71796cf79e7.rmeta: crates/odp/../../tests/transparency_matrix.rs Cargo.toml

crates/odp/../../tests/transparency_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
