/root/repo/target/debug/deps/odp_net-364362c5eca374ff.d: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libodp_net-364362c5eca374ff.rlib: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libodp_net-364362c5eca374ff.rmeta: crates/net/src/lib.rs crates/net/src/rex.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/rex.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/transport.rs:
