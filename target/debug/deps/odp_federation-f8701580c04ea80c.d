/root/repo/target/debug/deps/odp_federation-f8701580c04ea80c.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libodp_federation-f8701580c04ea80c.rmeta: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs Cargo.toml

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
