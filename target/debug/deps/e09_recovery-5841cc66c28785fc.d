/root/repo/target/debug/deps/e09_recovery-5841cc66c28785fc.d: crates/bench/benches/e09_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libe09_recovery-5841cc66c28785fc.rmeta: crates/bench/benches/e09_recovery.rs Cargo.toml

crates/bench/benches/e09_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
