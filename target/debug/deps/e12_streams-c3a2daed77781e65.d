/root/repo/target/debug/deps/e12_streams-c3a2daed77781e65.d: crates/bench/benches/e12_streams.rs Cargo.toml

/root/repo/target/debug/deps/libe12_streams-c3a2daed77781e65.rmeta: crates/bench/benches/e12_streams.rs Cargo.toml

crates/bench/benches/e12_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
