/root/repo/target/debug/deps/parking_lot-8bdc29fd0536af0b.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8bdc29fd0536af0b.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8bdc29fd0536af0b.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
