/root/repo/target/debug/deps/collection-29055effc96ddaf0.d: crates/gc/tests/collection.rs Cargo.toml

/root/repo/target/debug/deps/libcollection-29055effc96ddaf0.rmeta: crates/gc/tests/collection.rs Cargo.toml

crates/gc/tests/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
