/root/repo/target/debug/deps/zero_copy-f8691a8d0620840b.d: crates/wire/tests/zero_copy.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy-f8691a8d0620840b.rmeta: crates/wire/tests/zero_copy.rs Cargo.toml

crates/wire/tests/zero_copy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
