/root/repo/target/debug/deps/partition_heal-4b401516f0951359.d: crates/groups/tests/partition_heal.rs

/root/repo/target/debug/deps/partition_heal-4b401516f0951359: crates/groups/tests/partition_heal.rs

crates/groups/tests/partition_heal.rs:
