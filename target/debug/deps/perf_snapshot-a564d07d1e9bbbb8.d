/root/repo/target/debug/deps/perf_snapshot-a564d07d1e9bbbb8.d: crates/bench/src/bin/perf_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libperf_snapshot-a564d07d1e9bbbb8.rmeta: crates/bench/src/bin/perf_snapshot.rs Cargo.toml

crates/bench/src/bin/perf_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
