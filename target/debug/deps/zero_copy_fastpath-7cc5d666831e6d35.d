/root/repo/target/debug/deps/zero_copy_fastpath-7cc5d666831e6d35.d: crates/odp/../../tests/zero_copy_fastpath.rs

/root/repo/target/debug/deps/zero_copy_fastpath-7cc5d666831e6d35: crates/odp/../../tests/zero_copy_fastpath.rs

crates/odp/../../tests/zero_copy_fastpath.rs:
