/root/repo/target/debug/deps/trace_propagation-c5901b119b3cb2ac.d: crates/odp/../../tests/trace_propagation.rs

/root/repo/target/debug/deps/trace_propagation-c5901b119b3cb2ac: crates/odp/../../tests/trace_propagation.rs

crates/odp/../../tests/trace_propagation.rs:
