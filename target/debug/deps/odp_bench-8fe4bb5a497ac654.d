/root/repo/target/debug/deps/odp_bench-8fe4bb5a497ac654.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libodp_bench-8fe4bb5a497ac654.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libodp_bench-8fe4bb5a497ac654.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
