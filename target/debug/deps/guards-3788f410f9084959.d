/root/repo/target/debug/deps/guards-3788f410f9084959.d: crates/security/tests/guards.rs Cargo.toml

/root/repo/target/debug/deps/libguards-3788f410f9084959.rmeta: crates/security/tests/guards.rs Cargo.toml

crates/security/tests/guards.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
