/root/repo/target/debug/deps/perf_snapshot-d87d462ee0de5bc8.d: crates/bench/src/bin/perf_snapshot.rs

/root/repo/target/debug/deps/perf_snapshot-d87d462ee0de5bc8: crates/bench/src/bin/perf_snapshot.rs

crates/bench/src/bin/perf_snapshot.rs:
