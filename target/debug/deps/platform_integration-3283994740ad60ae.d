/root/repo/target/debug/deps/platform_integration-3283994740ad60ae.d: crates/odp/../../tests/platform_integration.rs

/root/repo/target/debug/deps/platform_integration-3283994740ad60ae: crates/odp/../../tests/platform_integration.rs

crates/odp/../../tests/platform_integration.rs:
