/root/repo/target/debug/deps/boundaries-5957949f48f93055.d: crates/federation/tests/boundaries.rs Cargo.toml

/root/repo/target/debug/deps/libboundaries-5957949f48f93055.rmeta: crates/federation/tests/boundaries.rs Cargo.toml

crates/federation/tests/boundaries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
