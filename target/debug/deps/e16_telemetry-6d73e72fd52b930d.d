/root/repo/target/debug/deps/e16_telemetry-6d73e72fd52b930d.d: crates/bench/benches/e16_telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libe16_telemetry-6d73e72fd52b930d.rmeta: crates/bench/benches/e16_telemetry.rs Cargo.toml

crates/bench/benches/e16_telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
