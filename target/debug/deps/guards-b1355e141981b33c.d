/root/repo/target/debug/deps/guards-b1355e141981b33c.d: crates/security/tests/guards.rs

/root/repo/target/debug/deps/guards-b1355e141981b33c: crates/security/tests/guards.rs

crates/security/tests/guards.rs:
