/root/repo/target/debug/deps/coalesced_throughput-62e906d62bbffe65.d: crates/net/tests/coalesced_throughput.rs

/root/repo/target/debug/deps/coalesced_throughput-62e906d62bbffe65: crates/net/tests/coalesced_throughput.rs

crates/net/tests/coalesced_throughput.rs:
