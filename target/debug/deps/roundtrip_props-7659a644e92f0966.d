/root/repo/target/debug/deps/roundtrip_props-7659a644e92f0966.d: crates/wire/tests/roundtrip_props.rs

/root/repo/target/debug/deps/roundtrip_props-7659a644e92f0966: crates/wire/tests/roundtrip_props.rs

crates/wire/tests/roundtrip_props.rs:
