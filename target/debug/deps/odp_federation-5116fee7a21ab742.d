/root/repo/target/debug/deps/odp_federation-5116fee7a21ab742.d: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

/root/repo/target/debug/deps/odp_federation-5116fee7a21ab742: crates/federation/src/lib.rs crates/federation/src/accounting.rs crates/federation/src/domain.rs crates/federation/src/interceptor.rs crates/federation/src/proxy.rs crates/federation/src/translate.rs

crates/federation/src/lib.rs:
crates/federation/src/accounting.rs:
crates/federation/src/domain.rs:
crates/federation/src/interceptor.rs:
crates/federation/src/proxy.rs:
crates/federation/src/translate.rs:
