//! Whole-platform integration: several subsystems composed in one
//! application, the way the paper intends them to be combined.

use odp::groups::{replicate, GroupPolicy};
use odp::prelude::*;
use odp::security::secret::establish;
use odp::security::{AuthLayer, Guard, SecretStore, SecurityPolicy};
use odp::storage::{recover, CheckpointPolicy, LoggingLayer, StableRepository, WriteAheadLog};
use odp::trading::trader::template;
use odp::trading::Trader;
use odp::tx::{SeparationConstraint, TxnSystem};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Inventory {
    stock: AtomicI64,
}

fn inventory_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("stock", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "reserve",
            vec![TypeSpec::Int],
            vec![
                OutcomeSig::ok(vec![TypeSpec::Int]),
                OutcomeSig::new("out_of_stock", vec![TypeSpec::Int]),
            ],
        )
        .build()
}

impl Servant for Inventory {
    fn interface_type(&self) -> InterfaceType {
        inventory_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "stock" => Outcome::ok(vec![Value::Int(self.stock.load(Ordering::SeqCst))]),
            "reserve" => {
                let n = args[0].as_int().unwrap_or(0);
                let current = self.stock.load(Ordering::SeqCst);
                if current < n {
                    Outcome::new("out_of_stock", vec![Value::Int(current)])
                } else {
                    Outcome::ok(vec![Value::Int(
                        self.stock.fetch_sub(n, Ordering::SeqCst) - n,
                    )])
                }
            }
            _ => Outcome::fail("no such op"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.stock.load(Ordering::SeqCst).to_be_bytes().to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
        self.stock.store(i64::from_be_bytes(arr), Ordering::SeqCst);
        Ok(())
    }
}

#[test]
fn traded_guarded_transactional_service() {
    // One service, three subsystems composed declaratively at export time:
    // a security guard, a concurrency-control layer, and a trader offer.
    let world = World::builder().capsules(3).build();
    let system = TxnSystem::new();
    let runtime = system.install_on(world.capsule(0));

    let server_secrets = Arc::new(SecretStore::new("warehouse"));
    let client_secrets = Arc::new(SecretStore::new("shop"));
    establish(&server_secrets, &client_secrets, 99);
    let guard = Guard::generate(
        Arc::clone(&server_secrets),
        SecurityPolicy::deny_all().allow_all("shop"),
    );

    let inventory = Arc::new(Inventory {
        stock: AtomicI64::new(10),
    });
    let cc = runtime.concurrency_layer(
        &(Arc::clone(&inventory) as Arc<dyn Servant>),
        SeparationConstraint::readers(&["stock"]),
    );
    let r = world.capsule(0).export_with(
        Arc::clone(&inventory) as Arc<dyn Servant>,
        ExportConfig {
            // Guard first, then concurrency control, then the servant.
            layers: vec![guard as Arc<dyn odp::core::ServerLayer>, cc],
            ..ExportConfig::default()
        },
    );

    // Advertise through a trader.
    let trader = Arc::new(Trader::new());
    trader.attach_capsule(world.capsule(1));
    trader.export_offer(r, [("region".to_owned(), Value::str("eu"))].into());
    let trader_ref = world
        .capsule(1)
        .export(Arc::clone(&trader) as Arc<dyn Servant>);

    // The client discovers the service by type, then invokes under a
    // transaction with authentication.
    let tb = world.capsule(2).bind(trader_ref);
    let out = tb
        .interrogate(
            "import",
            vec![
                template(inventory_type()),
                Value::record::<[_; 0], String>([]),
                Value::Int(1),
            ],
        )
        .unwrap();
    let found = out.result().unwrap().as_seq().unwrap()[0]
        .as_interface()
        .unwrap()
        .clone();

    let policy = TransparencyPolicy::default()
        .with_layer(AuthLayer::new(Arc::clone(&client_secrets), "warehouse"));
    let binding = world.capsule(2).bind_with(found, policy);

    let txn = system.begin(world.capsule(2));
    let out = txn.call(&binding, "reserve", vec![Value::Int(4)]).unwrap();
    assert!(out.is_ok());
    txn.commit().unwrap();
    assert_eq!(inventory.stock.load(Ordering::SeqCst), 6);

    // An aborted reservation is undone even through all the layers.
    let txn = system.begin(world.capsule(2));
    txn.call(&binding, "reserve", vec![Value::Int(5)]).unwrap();
    txn.abort();
    assert_eq!(inventory.stock.load(Ordering::SeqCst), 6);

    // An unauthenticated client cannot touch the service at all.
    let bare = world.capsule(2).bind(tb.target()); // trader is open…
    assert!(bare.interrogate("list_links", vec![]).is_ok());
    let bare_inventory = world.capsule(2).bind(binding.target());
    assert!(matches!(
        bare_inventory.interrogate("stock", vec![]),
        Err(InvokeError::Denied(_))
    ));
}

#[test]
fn replicated_ledger_with_recovery_of_a_member() {
    // Groups + storage: a replica that crashed is rebuilt from another
    // replica's snapshot through the join path, after the group already
    // failed over once.
    let world = World::builder().capsules(5).build();
    let ledger_factory = || -> Arc<dyn Servant> {
        struct L(Mutex<Vec<i64>>);
        impl Servant for L {
            fn interface_type(&self) -> InterfaceType {
                InterfaceTypeBuilder::new()
                    .interrogation(
                        "push",
                        vec![TypeSpec::Int],
                        vec![OutcomeSig::ok(vec![TypeSpec::Int])],
                    )
                    .interrogation("sum", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
                    .build()
            }
            fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
                match op {
                    "push" => {
                        let mut v = self.0.lock();
                        v.push(args[0].as_int().unwrap_or(0));
                        Outcome::ok(vec![Value::Int(v.len() as i64)])
                    }
                    "sum" => Outcome::ok(vec![Value::Int(self.0.lock().iter().sum())]),
                    _ => Outcome::fail("no such op"),
                }
            }
            fn snapshot(&self) -> Option<Vec<u8>> {
                let v = self.0.lock();
                Some(
                    odp::wire::marshal(&[Value::Seq(v.iter().map(|i| Value::Int(*i)).collect())])
                        .to_vec(),
                )
            }
            fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
                let values = odp::wire::unmarshal(snapshot).map_err(|e| e.to_string())?;
                *self.0.lock() = values[0]
                    .as_seq()
                    .ok_or("bad snapshot")?
                    .iter()
                    .filter_map(Value::as_int)
                    .collect();
                Ok(())
            }
        }
        Arc::new(L(Mutex::new(Vec::new())))
    };
    let mut group = replicate(&world.capsules()[..3], &ledger_factory, GroupPolicy::Active);
    let client = group.bind_via(world.capsule(4));
    for i in 1..=6 {
        client.interrogate("push", vec![Value::Int(i)]).unwrap();
    }
    // Sequencer dies; group fails over.
    world.capsule(0).crash();
    client.interrogate("push", vec![Value::Int(100)]).unwrap();
    // Replace the dead member with a fresh one on a new capsule; the join
    // transfers state from the (promoted) donor.
    group.remove_member(0);
    let newcomer = group.add_member(world.capsule(3), &ledger_factory);
    let out = client.interrogate("sum", vec![]).unwrap();
    assert_eq!(out.int(), Some(121));
    let direct = newcomer.app().dispatch("sum", vec![], &CallCtx::default());
    assert_eq!(direct.int(), Some(121), "joined member missing state");
}

#[test]
fn logged_service_survives_two_successive_crashes() {
    // Failure transparency twice over: crash, recover, crash the recovery
    // host, recover again — state intact both times.
    let world = World::builder().capsules(4).build();
    let wal = Arc::new(WriteAheadLog::new());
    let repo = Arc::new(StableRepository::default());
    let factory = || -> Arc<dyn Servant> {
        Arc::new(Inventory {
            stock: AtomicI64::new(100),
        })
    };
    let servant = factory();
    let layer = LoggingLayer::new(
        &servant,
        Arc::clone(&wal),
        Arc::clone(&repo),
        CheckpointPolicy { every_n_ops: 3 },
        Arc::new(|op| op == "reserve"),
    );
    let r = world.capsule(0).export_with(
        servant,
        ExportConfig {
            layers: vec![layer as Arc<dyn odp::core::ServerLayer>],
            ..ExportConfig::default()
        },
    );
    let client = world.capsule(3).bind(r.clone());
    for _ in 0..5 {
        client.interrogate("reserve", vec![Value::Int(2)]).unwrap();
    }
    // First crash + recovery on capsule 1, with continued logging.
    world.capsule(0).crash();
    let servant2_wal = Arc::clone(&wal);
    let servant2_repo = Arc::clone(&repo);
    let (ref2, _) = recover(
        world.capsule(1),
        r.iface,
        &factory,
        &repo,
        &wal,
        ExportConfig::default(),
        0,
    )
    .unwrap();
    // Re-wrap with logging so the second epoch is also protected.
    let servant2 = world.capsule(1).servant_of(r.iface).unwrap();
    let layer2 = LoggingLayer::new(
        &servant2,
        servant2_wal,
        servant2_repo,
        CheckpointPolicy { every_n_ops: 3 },
        Arc::new(|op| op == "reserve"),
    );
    world.capsule(1).export_at(
        r.iface,
        ref2.epoch,
        servant2,
        ExportConfig {
            layers: vec![layer2 as Arc<dyn odp::core::ServerLayer>],
            ..ExportConfig::default()
        },
    );
    world
        .capsule(1)
        .register_location(r.iface, ref2.home, ref2.epoch)
        .unwrap();
    assert_eq!(client.interrogate("stock", vec![]).unwrap().int(), Some(90));
    for _ in 0..3 {
        client.interrogate("reserve", vec![Value::Int(1)]).unwrap();
    }
    // Second crash + recovery on capsule 2.
    world.capsule(1).crash();
    let (ref3, _) = recover(
        world.capsule(2),
        r.iface,
        &factory,
        &repo,
        &wal,
        ExportConfig::default(),
        ref2.epoch,
    )
    .unwrap();
    world
        .capsule(2)
        .register_location(r.iface, ref3.home, ref3.epoch)
        .unwrap();
    assert!(ref3.epoch > ref2.epoch);
    assert_eq!(client.interrogate("stock", vec![]).unwrap().int(), Some(87));
}

#[test]
fn announcement_fan_out_monitoring() {
    // Announcements (§5.1) used as the paper's management plumbing: a
    // monitoring object receives load reports as announcements from many
    // capsules; no reply traffic exists at all.
    let world = World::builder().capsules(4).build();
    let reports = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    let ty = InterfaceTypeBuilder::new()
        .announcement("report", vec![TypeSpec::Str, TypeSpec::Int])
        .build();
    let monitor = FnServant::new(ty, move |_op, args, _ctx| {
        sink.lock().push((
            args[0].as_str().unwrap_or("").to_owned(),
            args[1].as_int().unwrap_or(0),
        ));
        Outcome::ok(vec![])
    });
    let monitor_ref = world.capsule(0).export(Arc::new(monitor));
    let sent_before = world.net().stats().sent.load(Ordering::Relaxed);
    for i in 1..4 {
        let binding = world.capsule(i).bind(monitor_ref.clone());
        binding
            .announce(
                "report",
                vec![Value::str(format!("cap{i}")), Value::Int(i as i64 * 10)],
            )
            .unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while reports.lock().len() < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(reports.lock().len(), 3);
    // One datagram per announcement: no replies, no retransmissions.
    let sent_after = world.net().stats().sent.load(Ordering::Relaxed);
    assert_eq!(sent_after - sent_before, 3);
}
