//! The transparency matrix: each transparency of §5 of the paper is
//! *selective* — these tests verify both the selected and the deselected
//! behaviour, since "sometimes applications will want to exercise control
//! over distribution" (§3).

use odp::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn counter_servant() -> Arc<dyn Servant> {
    struct C(AtomicI64);
    impl Servant for C {
        fn interface_type(&self) -> InterfaceType {
            InterfaceTypeBuilder::new()
                .interrogation("read", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
                .interrogation(
                    "add",
                    vec![TypeSpec::Int],
                    vec![OutcomeSig::ok(vec![TypeSpec::Int])],
                )
                .build()
        }
        fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
            match op {
                "read" => Outcome::ok(vec![Value::Int(self.0.load(Ordering::SeqCst))]),
                "add" => Outcome::ok(vec![Value::Int(
                    self.0
                        .fetch_add(args[0].as_int().unwrap_or(0), Ordering::SeqCst)
                        + args[0].as_int().unwrap_or(0),
                )]),
                _ => Outcome::fail("no such op"),
            }
        }
        fn snapshot(&self) -> Option<Vec<u8>> {
            Some(self.0.load(Ordering::SeqCst).to_be_bytes().to_vec())
        }
        fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
            let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad")?;
            self.0.store(i64::from_be_bytes(arr), Ordering::SeqCst);
            Ok(())
        }
    }
    Arc::new(C(AtomicI64::new(0)))
}

// --- Access transparency ------------------------------------------------

#[test]
fn access_local_and_remote_are_indistinguishable_to_the_program() {
    let world = World::quick();
    let local_ref = world.capsule(0).export(counter_servant());
    let remote_ref = world.capsule(1).export(counter_servant());
    // The same client code works against both; only the engineering path
    // differs (fast path vs marshalling + REX).
    for r in [local_ref, remote_ref] {
        let binding = world.capsule(0).bind(r);
        assert_eq!(
            binding
                .interrogate("add", vec![Value::Int(7)])
                .unwrap()
                .int(),
            Some(7)
        );
    }
    assert!(
        world
            .capsule(0)
            .stats
            .local_fast_path
            .load(Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn access_constant_state_values_cross_by_copy_mutable_by_reference() {
    // §4.5: integers/strings/records travel by value; ADTs by reference.
    let world = World::quick();
    let inner = world.capsule(0).export(counter_servant());
    let ty = InterfaceTypeBuilder::new()
        .interrogation(
            "bundle",
            vec![],
            vec![OutcomeSig::ok(vec![TypeSpec::Str, TypeSpec::Any])],
        )
        .build();
    let handed = inner.clone();
    let svc = FnServant::new(ty, move |_op, _args, _ctx| {
        Outcome::ok(vec![
            Value::str("metadata"),
            Value::Interface(handed.clone()),
        ])
    });
    let r = world.capsule(0).export(Arc::new(svc));
    let out = world
        .capsule(1)
        .bind(r)
        .interrogate("bundle", vec![])
        .unwrap();
    // The string arrived as a copy…
    assert_eq!(out.results[0].as_str(), Some("metadata"));
    // …the counter arrived as a usable reference to shared state.
    let fetched = out.results[1].as_interface().unwrap().clone();
    let b = world.capsule(1).bind(fetched);
    b.interrogate("add", vec![Value::Int(5)]).unwrap();
    let direct = world.capsule(1).bind(inner);
    assert_eq!(direct.interrogate("read", vec![]).unwrap().int(), Some(5));
}

// --- Location transparency ----------------------------------------------

#[test]
fn location_selected_follows_moves_deselected_does_not() {
    let world = World::quick();
    let r = world.capsule(0).export(counter_servant());
    let with = world.capsule(1).bind(r.clone());
    let without = world
        .capsule(1)
        .bind_with(r.clone(), TransparencyPolicy::minimal());
    with.interrogate("add", vec![Value::Int(1)]).unwrap();
    world
        .capsule(0)
        .migrate_to(r.iface, world.capsule(1))
        .unwrap();
    // Selected: transparent.
    assert_eq!(with.interrogate("read", vec![]).unwrap().int(), Some(1));
    // Deselected: the application sees the raw distribution event.
    assert!(matches!(
        without.interrogate("read", vec![]),
        Err(InvokeError::Stale { .. })
    ));
}

// --- Failure transparency (client half) ----------------------------------

#[test]
fn failure_retry_selected_rides_partition_flap_deselected_fails() {
    let world = World::builder().capsules(2).build();
    let r = world.capsule(0).export(counter_servant());
    let a = world.capsule(0).node();
    let b = world.capsule(1).node();
    // Client with retries (generous backoff) vs without.
    let with = world.capsule(1).bind_with(
        r.clone(),
        TransparencyPolicy::default()
            .with_qos(CallQos::with_deadline(Duration::from_millis(120)))
            .with_failure(Some(odp::core::RetryPolicy {
                max_retries: 5,
                backoff: Duration::from_millis(50),
                ..odp::core::RetryPolicy::default()
            })),
    );
    let without = world.capsule(1).bind_with(
        r,
        TransparencyPolicy::minimal().with_qos(CallQos::with_deadline(Duration::from_millis(120))),
    );
    // Partition now; heal shortly after the first attempts fail.
    world.net().partition(a, b);
    let healer = {
        let net = world.net().clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            net.heal(a, b);
        })
    };
    assert!(matches!(
        without.interrogate("read", vec![]),
        Err(InvokeError::Rex(_))
    ));
    // The retrying binding outlives the flap.
    assert_eq!(with.interrogate("read", vec![]).unwrap().int(), Some(0));
    healer.join().unwrap();
}

// --- Concurrency transparency ---------------------------------------------

#[test]
fn concurrency_serialized_discipline_vs_concurrent() {
    // With the serialized discipline the runtime masks overlap; with the
    // concurrent discipline a racy servant loses updates — by design, the
    // application chose to manage concurrency itself.
    let world = World::quick();
    let make_racy = || {
        let cell = Arc::new(parking_lot::Mutex::new(0i64));
        let c = Arc::clone(&cell);
        let ty = InterfaceTypeBuilder::new()
            .interrogation("bump", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
            .build();
        let servant = FnServant::new(ty, move |_op, _args, _ctx| {
            let v = *c.lock();
            std::thread::sleep(Duration::from_micros(500));
            *c.lock() = v + 1;
            Outcome::ok(vec![Value::Int(v + 1)])
        });
        (Arc::new(servant) as Arc<dyn Servant>, cell)
    };
    let (serialized, s_cell) = make_racy();
    let r = world.capsule(0).export_with(
        serialized,
        ExportConfig {
            discipline: SyncDiscipline::Serialized,
            ..ExportConfig::default()
        },
    );
    std::thread::scope(|sc| {
        for _ in 0..4 {
            let b = world.capsule(1).bind(r.clone());
            sc.spawn(move || {
                for _ in 0..10 {
                    b.interrogate("bump", vec![]).unwrap();
                }
            });
        }
    });
    assert_eq!(*s_cell.lock(), 40, "serialized dispatch lost updates");
}

// --- Replication transparency ----------------------------------------------

#[test]
fn replication_group_is_invoked_exactly_like_a_singleton() {
    use odp::groups::{replicate, GroupPolicy};
    let world = World::builder().capsules(4).build();
    let singleton_ref = world.capsule(0).export(counter_servant());
    let group = replicate(
        &world.capsules()[1..3],
        &counter_servant,
        GroupPolicy::Active,
    );
    // Identical client code for both:
    let s = world.capsule(3).bind(singleton_ref);
    let g = group.bind_via(world.capsule(3));
    for binding in [&s, &g] {
        assert_eq!(
            binding
                .interrogate("add", vec![Value::Int(2)])
                .unwrap()
                .int(),
            Some(2)
        );
        assert_eq!(binding.interrogate("read", vec![]).unwrap().int(), Some(2));
    }
}

// --- Resource transparency ---------------------------------------------------

#[test]
fn resource_passivation_invisible_to_clients() {
    use odp::storage::{Passivator, StableRepository};
    let world = World::quick();
    let repo = Arc::new(StableRepository::default());
    let passivator = Passivator::new(repo);
    let r = world.capsule(0).export(counter_servant());
    let client = world.capsule(1).bind(r.clone());
    client.interrogate("add", vec![Value::Int(9)]).unwrap();
    passivator
        .passivate(world.capsule(0), r.iface, Arc::new(counter_servant))
        .unwrap();
    // Same binding, same answers — activation happened under the covers.
    assert_eq!(client.interrogate("read", vec![]).unwrap().int(), Some(9));
}

// --- Federation transparency ---------------------------------------------------

#[test]
fn federation_boundary_invisible_when_selected_absent_when_not() {
    use odp::federation::{AdmissionPolicy, BoundaryLayer, DomainMap, Gateway};
    use odp::types::DomainId;
    let world = World::builder().capsules(3).build();
    let map = DomainMap::new();
    map.declare(DomainId(1), "a");
    map.declare(DomainId(2), "b");
    map.assign(world.capsule(0).node(), DomainId(1));
    map.assign(world.capsule(1).node(), DomainId(1));
    map.assign(world.capsule(2).node(), DomainId(2));
    Gateway::new(
        Arc::clone(&map),
        DomainId(1),
        world.capsule(1),
        AdmissionPolicy::allow_all(),
    )
    .install();
    let r = world.capsule(0).export(counter_servant());
    // Selected: the call silently crosses through the gateway.
    let with = world.capsule(2).bind_with(
        r.clone(),
        TransparencyPolicy::default().with_layer(BoundaryLayer::new(Arc::clone(&map), DomainId(2))),
    );
    assert!(with
        .interrogate("add", vec![Value::Int(1)])
        .unwrap()
        .is_ok());
    // Without the layer, the client bypasses the boundary entirely (in a
    // real deployment the network itself would refuse; the policy point is
    // that interception is a *selected* mechanism, not ambient magic).
    let without = world.capsule(2).bind(r);
    assert!(without.interrogate("read", vec![]).is_ok());
}
