//! The platform over real TCP: the engineering model must not care which
//! transport carries it (§5.4). A capsule topology is assembled by hand on
//! `TcpNetwork` (no `World` convenience) and the core transparencies are
//! exercised over loopback sockets.

use odp::core::relocator::RelocationServant;
use odp::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

struct Counter(AtomicI64);

impl Servant for Counter {
    fn interface_type(&self) -> InterfaceType {
        InterfaceTypeBuilder::new()
            .interrogation("read", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
            .interrogation(
                "add",
                vec![TypeSpec::Int],
                vec![OutcomeSig::ok(vec![TypeSpec::Int])],
            )
            .build()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "read" => Outcome::ok(vec![Value::Int(self.0.load(Ordering::SeqCst))]),
            "add" => Outcome::ok(vec![Value::Int(
                self.0
                    .fetch_add(args[0].as_int().unwrap_or(0), Ordering::SeqCst)
                    + args[0].as_int().unwrap_or(0),
            )]),
            _ => Outcome::fail("no such op"),
        }
    }
}

#[test]
fn capsules_interwork_over_tcp() {
    let net: Arc<dyn Transport> = Arc::new(TcpNetwork::new());
    // Hand-built topology: a system capsule with the relocator plus two
    // application capsules, exactly as `World` does over SimNet.
    let system = Capsule::new(Arc::clone(&net), NodeId(1)).unwrap();
    let reloc_ref = system.export(Arc::new(RelocationServant::new()));
    system.set_relocator(reloc_ref.clone());
    let server = Capsule::new(Arc::clone(&net), NodeId(2)).unwrap();
    let client_capsule = Capsule::new(Arc::clone(&net), NodeId(3)).unwrap();
    server.set_relocator(reloc_ref.clone());
    client_capsule.set_relocator(reloc_ref);

    let r = server.export(Arc::new(Counter(AtomicI64::new(0))));
    let binding = client_capsule.bind(r.clone());
    for i in 1..=10 {
        let out = binding.interrogate("add", vec![Value::Int(1)]).unwrap();
        assert_eq!(out.int(), Some(i));
    }

    // Migration over TCP: tombstone redirection works identically.
    server.migrate_to(r.iface, &client_capsule).unwrap();
    assert_eq!(binding.interrogate("read", vec![]).unwrap().int(), Some(10));
    assert_eq!(binding.target().home, client_capsule.node());

    // Interface references marshal across real sockets.
    let ty = InterfaceTypeBuilder::new()
        .interrogation("get", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Any])])
        .build();
    let handed = binding.target();
    let dir = FnServant::new(ty, move |_o, _a, _c| {
        Outcome::ok(vec![Value::Interface(handed.clone())])
    });
    let dir_ref = server.export(Arc::new(dir));
    let out = client_capsule
        .bind(dir_ref)
        .interrogate("get", vec![])
        .unwrap();
    let fetched = out.result().unwrap().as_interface().unwrap().clone();
    let again = client_capsule.bind(fetched);
    assert_eq!(again.interrogate("read", vec![]).unwrap().int(), Some(10));
}

#[test]
fn type_errors_and_terminations_over_tcp() {
    let net: Arc<dyn Transport> = Arc::new(TcpNetwork::new());
    let server = Capsule::new(Arc::clone(&net), NodeId(1)).unwrap();
    let client = Capsule::new(net, NodeId(2)).unwrap();
    let r = server.export(Arc::new(Counter(AtomicI64::new(0))));
    let binding = client.bind_with(r.clone(), TransparencyPolicy::minimal());
    assert!(matches!(
        binding.interrogate("add", vec![Value::str("oops")]),
        Err(InvokeError::TypeCheck(_))
    ));
    server.close(r.iface);
    assert!(matches!(
        binding.interrogate("read", vec![]),
        Err(InvokeError::Closed(_))
    ));
}
