//! Cross-capsule trace propagation: one client interrogation must yield
//! one *connected* span tree — client stub, every transparency layer it
//! selected, the access layer, the remote nucleus dispatch, and any nested
//! invocations those trigger (location chases, retries, group multicast
//! fan-out) — with no orphaned spans, even while the schedule is hostile
//! (relocation mid-binding, a partition that heals under retry, a crashed
//! group sequencer).
//!
//! The telemetry hub is process-global and these tests run concurrently,
//! so each test uses its own operation names and identifies its own traces
//! by trace id; nothing here clears or disables the hub mid-run.

use odp::groups::{replicate, GroupPolicy};
use odp::prelude::*;
use odp::telemetry::{hub, Sampling, SpanRecord};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn enable_tracing() {
    hub().set_recording(true);
    hub().set_sampling(Sampling::All);
}

/// A one-interrogation servant with a caller-chosen operation name, so
/// concurrent tests can tell their spans apart.
fn adder(op: &'static str) -> Arc<dyn Servant> {
    struct Adder(&'static str, AtomicI64);
    impl Servant for Adder {
        fn interface_type(&self) -> InterfaceType {
            InterfaceTypeBuilder::new()
                .interrogation(
                    self.0,
                    vec![TypeSpec::Int],
                    vec![OutcomeSig::ok(vec![TypeSpec::Int])],
                )
                .build()
        }
        fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
            if op == self.0 {
                let add = args.first().and_then(Value::as_int).unwrap_or(0);
                Outcome::ok(vec![Value::Int(
                    self.1.fetch_add(add, Ordering::SeqCst) + add,
                )])
            } else {
                Outcome::fail("no such op")
            }
        }
        fn snapshot(&self) -> Option<Vec<u8>> {
            Some(self.1.load(Ordering::SeqCst).to_be_bytes().to_vec())
        }
        fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
            let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
            self.1.store(i64::from_be_bytes(arr), Ordering::SeqCst);
            Ok(())
        }
    }
    Arc::new(Adder(op, AtomicI64::new(0)))
}

/// The root ("client"-layer, unparented) spans recorded for `op` whose
/// trace ids are not in `seen`.
fn new_roots(op: &str, seen: &BTreeSet<u64>) -> Vec<SpanRecord> {
    hub()
        .spans()
        .into_iter()
        .filter(|s| {
            s.layer == "client"
                && s.parent_span == 0
                && s.op.as_deref() == Some(op)
                && !seen.contains(&s.trace_id)
        })
        .collect()
}

/// Asserts the trace is one tree: a single root, and every other span's
/// parent is a span of the same trace (no orphans). Returns the layer
/// names present.
fn assert_connected(trace_id: u64) -> BTreeSet<&'static str> {
    let spans = hub().trace_spans(trace_id);
    assert!(!spans.is_empty(), "trace {trace_id} recorded no spans");
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let roots: Vec<_> = spans.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {trace_id} must have exactly one root, got {roots:?}"
    );
    for s in &spans {
        assert!(
            s.parent_span == 0 || ids.contains(&s.parent_span),
            "orphaned span in trace {trace_id}: {s:?} (parent not recorded)"
        );
    }
    spans.iter().map(|s| s.layer).collect()
}

#[test]
fn one_call_through_retry_and_relocation_is_one_connected_tree() {
    enable_tracing();
    let world = World::builder().capsules(3).build();
    let r = world.capsule(0).export(adder("tp_reloc_add"));
    let client = world.capsule(1).bind_with(
        r.clone(),
        TransparencyPolicy::default().with_qos(CallQos::with_deadline(Duration::from_secs(2))),
    );
    let mut seen = BTreeSet::new();

    // Plain call: stub -> retry -> location -> access -> dispatch.
    client
        .interrogate("tp_reloc_add", vec![Value::Int(1)])
        .unwrap();
    let roots = new_roots("tp_reloc_add", &seen);
    assert_eq!(roots.len(), 1, "exactly one root per interrogation");
    let layers = assert_connected(roots[0].trace_id);
    for expected in ["client", "failure:retry", "location", "access", "dispatch"] {
        assert!(
            layers.contains(expected),
            "missing {expected} in {layers:?}"
        );
    }
    seen.insert(roots[0].trace_id);

    // Relocate the servant; the next call chases the __moved tombstone.
    // The chase happens *inside* the caller's location span, so the extra
    // access-layer work must still hang off the same tree.
    world
        .capsule(0)
        .migrate_to(r.iface, world.capsule(2))
        .unwrap();
    assert_eq!(
        client
            .interrogate("tp_reloc_add", vec![Value::Int(1)])
            .unwrap()
            .int(),
        Some(2)
    );
    let roots = new_roots("tp_reloc_add", &seen);
    assert_eq!(roots.len(), 1);
    let moved_trace = roots[0].trace_id;
    let layers = assert_connected(moved_trace);
    assert!(layers.contains("dispatch"), "chase still reaches dispatch");
    assert!(
        hub()
            .events()
            .iter()
            .any(|e| { e.kind == "location.retarget" && e.trace_id == moved_trace }),
        "the retarget must be on the moved call's trace"
    );
    seen.insert(moved_trace);

    // Partition the client from the (new) home. Partition drops are
    // silent, so a generous deadline would let REX retransmission ride
    // the flap without ever surfacing a failure; a short end-to-end
    // budget makes the first attempt time out for real. The retry
    // layer's attempt must land as an event on the failing call's trace,
    // and the failing call must still be one connected tree.
    let a = world.capsule(1).node();
    let b = world.capsule(2).node();
    world.net().partition(a, b);
    let hurried = world.capsule(1).bind_with(
        r,
        TransparencyPolicy::default()
            .with_qos(CallQos::with_deadline(Duration::from_millis(100)))
            .with_failure(Some(odp::core::RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_millis(10),
                ..odp::core::RetryPolicy::default()
            })),
    );
    assert!(
        hurried
            .interrogate("tp_reloc_add", vec![Value::Int(1)])
            .is_err(),
        "partitioned call with a 100ms budget must fail"
    );
    let roots = new_roots("tp_reloc_add", &seen);
    assert_eq!(roots.len(), 1);
    let failed_trace = roots[0].trace_id;
    assert_connected(failed_trace);
    assert!(
        hub()
            .events()
            .iter()
            .any(|e| { e.kind == "retry.attempt" && e.trace_id == failed_trace }),
        "the retry under partition must be an event on the call's trace"
    );
    seen.insert(failed_trace);

    // Heal: the original binding's next call crosses the restored link
    // and its tree reaches the relocated servant's dispatch.
    world.net().heal(a, b);
    assert_eq!(
        client
            .interrogate("tp_reloc_add", vec![Value::Int(1)])
            .unwrap()
            .int(),
        Some(3)
    );
    let roots = new_roots("tp_reloc_add", &seen);
    assert_eq!(roots.len(), 1);
    let healed_layers = assert_connected(roots[0].trace_id);
    assert!(healed_layers.contains("dispatch"));
}

/// The Observatory's operator workflow, end to end: a deliberately slow
/// call lands in a high log₂ bucket, that bucket's exemplar names the
/// call's trace id, and `render_trace(trace_id)` yields the connected
/// span tree for exactly that call. (The 300 ms sleep puts it in bucket
/// ≥27 — far above anything else this binary's tests record on the same
/// shared client cell, so the *hot* exemplar is deterministically ours.)
#[test]
fn hot_bucket_exemplar_links_to_a_connected_trace() {
    enable_tracing();
    struct Sleeper;
    impl Servant for Sleeper {
        fn interface_type(&self) -> InterfaceType {
            InterfaceTypeBuilder::new()
                .interrogation("tp_exemplar_slow", vec![], vec![OutcomeSig::ok(vec![])])
                .build()
        }
        fn dispatch(&self, _op: &str, _args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
            std::thread::sleep(Duration::from_millis(300));
            Outcome::ok(vec![])
        }
    }
    let world = World::builder().capsules(2).build();
    let r = world.capsule(0).export(Arc::new(Sleeper));
    let client_node = world.capsule(1).node().raw();
    let client = world.capsule(1).bind_with(
        r,
        TransparencyPolicy::default().with_qos(CallQos::with_deadline(Duration::from_secs(5))),
    );
    client.interrogate("tp_exemplar_slow", vec![]).unwrap();

    let roots = new_roots("tp_exemplar_slow", &BTreeSet::new());
    assert_eq!(roots.len(), 1, "exactly one root for the slow call");
    let slow_trace = roots[0].trace_id;

    let cell = hub()
        .metrics_snapshot()
        .into_iter()
        .find(|m| m.node == client_node && m.layer == "client")
        .expect("client-layer cell for the slow call's node");
    let (bucket, exemplar) = cell.hot_exemplar().expect("hot bucket has an exemplar");
    assert!(
        bucket >= 27,
        "a 300 ms call must land in a slow bucket, got {bucket}"
    );
    assert_eq!(
        exemplar.trace_id, slow_trace,
        "the hot bucket's exemplar must name the slow call"
    );
    assert_eq!(exemplar.node, client_node);

    // The jump an operator makes from a hot p99 bucket: exemplar trace id
    // straight into the span-tree renderer.
    let rendered = hub().render_trace(exemplar.trace_id);
    assert!(
        !rendered.is_empty(),
        "render_trace must resolve the exemplar's trace"
    );
    let layers = assert_connected(exemplar.trace_id);
    assert!(
        layers.contains("dispatch"),
        "exemplar trace reaches the remote dispatch: {layers:?}"
    );
}

#[test]
fn group_fan_out_and_failover_stay_on_one_tree() {
    enable_tracing();
    let world = World::builder().capsules(4).build();
    let factory = || adder("tp_fan_add");
    let group = replicate(&world.capsules()[..3], &factory, GroupPolicy::Active);
    let client = group.bind_via(world.capsule(3));
    let mut seen = BTreeSet::new();

    // One interrogation actively multicasts to every member: the
    // sequencer's dispatch span must parent the relay calls, whose own
    // dispatch spans land on the other two nodes — one tree, three
    // dispatches.
    client
        .interrogate("tp_fan_add", vec![Value::Int(5)])
        .unwrap();
    let roots = new_roots("tp_fan_add", &seen);
    assert_eq!(roots.len(), 1);
    let fan_trace = roots[0].trace_id;
    let layers = assert_connected(fan_trace);
    assert!(layers.contains("replication:group"));
    let dispatch_nodes: BTreeSet<u64> = hub()
        .trace_spans(fan_trace)
        .into_iter()
        .filter(|s| s.layer == "dispatch")
        .map(|s| s.node)
        .collect();
    assert!(
        dispatch_nodes.len() >= 3,
        "active multicast must dispatch on every member, got {dispatch_nodes:?}"
    );
    seen.insert(fan_trace);

    // Crash the sequencer: the group layer fails over mid-call, and the
    // failover is an event on the same trace as the surviving attempt.
    world.capsule(0).crash();
    client
        .interrogate("tp_fan_add", vec![Value::Int(7)])
        .unwrap();
    let roots = new_roots("tp_fan_add", &seen);
    assert_eq!(roots.len(), 1);
    let failover_trace = roots[0].trace_id;
    assert_connected(failover_trace);
    assert!(
        hub()
            .events()
            .iter()
            .any(|e| { e.kind == "group.failover" && e.trace_id == failover_trace }),
        "failover must be recorded on the failing call's trace"
    );
}
