//! End-to-end overload-plane tests: open-loop load against an
//! admission-controlled export, through the full access path (client
//! stack, wire, REX, server stack).
//!
//! The knee claim in miniature: at 2x the export's capacity, goodput must
//! hold within 20% of the at-capacity goodput, nothing may surface as a
//! *failure* (overload is shed, not broken), and a shed call must come
//! back as the typed [`InvokeError::Rejected`] carrying the server's
//! `retry_after` hint — exactly once, with no retry amplification.

use odp::chaos::{run_load, LoadGenConfig, LoadOp, LoadReport, OpResult};
use odp::core::{AdmissionLayer, AdmissionPolicy, ServerLayer};
use odp::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const SERVICE: Duration = Duration::from_millis(5);

/// An admission-controlled fixed-service-time export plus a client
/// binding with deadlines but no client-side failure machinery (the soak
/// measures the server's shedding, not the client's retries).
fn overloadable_world() -> (World, Arc<AdmissionLayer>, Arc<ClientBinding>, f64) {
    let world = World::builder().capsules(2).workers(16).build();
    let policy = AdmissionPolicy {
        max_concurrent: 2,
        queue_capacity: 8,
        retry_after: Duration::from_millis(1),
        max_wait: Duration::from_millis(150),
    };
    let admission = AdmissionLayer::with_node(policy, world.capsule(0).node().raw());
    let ty = InterfaceTypeBuilder::new()
        .interrogation("work", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .build();
    let servant = FnServant::new(ty, |_op, _args, _ctx| {
        std::thread::sleep(SERVICE);
        Outcome::ok(vec![Value::Int(1)])
    });
    let reference = world.capsule(0).export_with(
        Arc::new(servant),
        ExportConfig {
            layers: vec![admission.clone() as Arc<dyn ServerLayer>],
            ..ExportConfig::default()
        },
    );
    let binding = Arc::new(
        world.capsule(1).bind_with(
            reference,
            TransparencyPolicy::default()
                .with_qos(CallQos::with_deadline(Duration::from_millis(250)))
                .with_failure(None),
        ),
    );
    for _ in 0..4 {
        binding.interrogate("work", vec![]).expect("warmup");
    }
    let capacity = policy.max_concurrent as f64 / SERVICE.as_secs_f64();
    (world, admission, binding, capacity)
}

fn drive(binding: &Arc<ClientBinding>, rate: f64, seed: u64) -> LoadReport {
    let b = Arc::clone(binding);
    let ops = vec![LoadOp::new("work", 1, move || {
        match b.interrogate("work", vec![]) {
            Ok(_) => OpResult::Ok,
            Err(InvokeError::Rejected { .. }) => OpResult::Shed,
            Err(_) => OpResult::Failed,
        }
    })];
    run_load(
        &LoadGenConfig {
            seed,
            rate_per_sec: rate,
            duration: Duration::from_secs(1),
            workers: 48,
        },
        &ops,
    )
}

/// Soak at 2x capacity: goodput stays within 20% of the at-capacity
/// goodput, the excess is shed (never failed), and sheds come back fast.
#[test]
fn soak_at_twice_capacity_holds_goodput() {
    let (_world, admission, binding, capacity) = overloadable_world();
    let at_capacity = drive(&binding, capacity, 11);
    let at_2x = drive(&binding, capacity * 2.0, 12);

    assert_eq!(
        at_capacity.failed(),
        0,
        "at-capacity failures: {at_capacity:?}"
    );
    assert_eq!(at_2x.failed(), 0, "overload must shed, not fail: {at_2x:?}");
    assert!(at_2x.shed() > 0, "2x offered load must shed something");
    assert!(
        at_2x.goodput_per_sec() >= 0.8 * at_capacity.goodput_per_sec(),
        "goodput collapsed past the knee: {:.0}/s at 2x vs {:.0}/s at capacity",
        at_2x.goodput_per_sec(),
        at_capacity.goodput_per_sec()
    );
    // Shedding happens in queue-math time, far below the 250 ms deadline.
    assert!(
        at_2x.shed_latency_at(0.99) < Duration::from_millis(100).as_nanos() as u64,
        "shed p99 too slow: {} ns",
        at_2x.shed_latency_at(0.99)
    );
    assert!(admission.shed.load(Ordering::Relaxed) >= at_2x.shed());
}

/// A shed call surfaces as the *typed* rejection with the server's
/// back-off hint — and the client retry layer does not amplify it: one
/// client call is exactly one server-side shed.
#[test]
fn rejection_surfaces_typed_retry_after_without_amplification() {
    let world = World::builder().capsules(2).workers(8).build();
    let policy = AdmissionPolicy {
        max_concurrent: 1,
        queue_capacity: 0,
        retry_after: Duration::from_millis(7),
        max_wait: Duration::from_millis(100),
    };
    let admission = AdmissionLayer::with_node(policy, world.capsule(0).node().raw());
    let ty = InterfaceTypeBuilder::new()
        .interrogation("work", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .build();
    let servant = FnServant::new(ty, |_op, _args, _ctx| {
        std::thread::sleep(Duration::from_millis(300));
        Outcome::ok(vec![Value::Int(1)])
    });
    let reference = world.capsule(0).export_with(
        Arc::new(servant),
        ExportConfig {
            layers: vec![admission.clone() as Arc<dyn ServerLayer>],
            ..ExportConfig::default()
        },
    );
    // Default transparency policy: retry machinery ENABLED — the point is
    // that rejections pass through it untouched.
    let binding = Arc::new(world.capsule(1).bind(reference));

    // Pin the single slot with a long call from another thread.
    let occupant = {
        let binding = Arc::clone(&binding);
        std::thread::spawn(move || binding.interrogate("work", vec![]))
    };
    while admission.admitted.load(Ordering::Relaxed) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }

    match binding.interrogate("work", vec![]) {
        Err(InvokeError::Rejected { retry_after }) => {
            assert_eq!(
                retry_after, policy.retry_after,
                "retry_after hint must survive the wire"
            );
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    assert_eq!(
        admission.shed.load(Ordering::Relaxed),
        1,
        "one client call must be exactly one server-side shed (no retry amplification)"
    );
    occupant.join().unwrap().expect("occupant call");
}
