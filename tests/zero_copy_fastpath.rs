//! Platform-level proof of the zero-copy hot path, measured through the
//! [`odp::telemetry::WireStats`] counters:
//!
//! * the **colocated fast path** performs no wire work at all — zero pool
//!   traffic, zero decode bytes, zero frames — i.e. zero per-call heap
//!   allocations attributable to marshalling;
//! * the **remote path over real TCP** runs pool-hits-only at steady
//!   state: once the REX reply cache has filled (its inserts retain one
//!   buffer per call until eviction starts recycling them), no invocation
//!   allocates a fresh encode buffer.
//!
//! One test function on purpose: the counters are process-global and
//! in-binary test threads would race on the deltas.

use odp::prelude::*;
use odp::telemetry::wire_stats;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

struct Counter(AtomicI64);

impl Servant for Counter {
    fn interface_type(&self) -> InterfaceType {
        InterfaceTypeBuilder::new()
            .interrogation(
                "add",
                vec![TypeSpec::Int],
                vec![OutcomeSig::ok(vec![TypeSpec::Int])],
            )
            .build()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "add" => Outcome::ok(vec![Value::Int(
                self.0
                    .fetch_add(args[0].as_int().unwrap_or(0), Ordering::SeqCst),
            )]),
            _ => Outcome::fail("no such op"),
        }
    }
}

#[test]
fn colocated_calls_do_no_wire_work_and_remote_calls_run_hits_only() {
    // --- Colocated: no marshalling at all. ------------------------------
    let world = World::quick();
    let r = world
        .capsule(0)
        .export(Arc::new(Counter(AtomicI64::new(0))));
    let colocated = world.capsule(0).bind(r);
    colocated.interrogate("add", vec![Value::Int(1)]).unwrap();
    let before = wire_stats().snapshot();
    for _ in 0..500 {
        colocated.interrogate("add", vec![Value::Int(1)]).unwrap();
    }
    let d = wire_stats().snapshot().since(&before);
    assert_eq!(
        d.pool_hits, 0,
        "colocated calls must not touch the buffer pool"
    );
    assert_eq!(
        d.pool_misses, 0,
        "colocated calls must not allocate encode buffers"
    );
    assert_eq!(
        d.decode_borrowed_bytes, 0,
        "colocated calls must not decode"
    );
    assert_eq!(
        d.decode_copied_bytes, 0,
        "colocated calls must not copy payloads"
    );
    assert_eq!(d.tx_frames, 0, "colocated calls must not emit frames");
    drop(world);

    // --- Remote over TCP: steady state is pool-hits-only. ---------------
    let net: Arc<dyn Transport> = Arc::new(TcpNetwork::new());
    let server = odp::core::Capsule::with_workers(Arc::clone(&net), NodeId(1), 1).unwrap();
    let client = odp::core::Capsule::with_workers(Arc::clone(&net), NodeId(2), 1).unwrap();
    let r = server.export(Arc::new(Counter(AtomicI64::new(0))));
    let binding = client.bind(r);

    // Warm well past the REX reply-cache capacity (4096): until the cache
    // is full, each call's reply body is *retained* in the cache (a
    // legitimate miss when replacing it); once eviction starts recycling
    // the evicted buffers, residual misses decay over the next few
    // thousand calls as the pool inventory grows to cover worst-case
    // in-flight frames, then stay at exactly zero.
    for _ in 0..9000 {
        binding.interrogate("add", vec![Value::Int(1)]).unwrap();
    }

    let before = wire_stats().snapshot();
    for _ in 0..500 {
        binding.interrogate("add", vec![Value::Int(1)]).unwrap();
    }
    let d = wire_stats().snapshot().since(&before);
    assert!(d.pool_hits > 0, "remote calls must run through the pool");
    assert_eq!(
        d.pool_misses, 0,
        "steady-state remote calls must never allocate a fresh encode buffer \
         ({} hits, {} misses)",
        d.pool_hits, d.pool_misses
    );
    assert!(
        d.tx_frames >= 1000,
        "each call sends request + reply frames"
    );
}
