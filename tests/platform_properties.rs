//! Cross-crate property tests: laws the platform's core abstractions must
//! satisfy for the architecture to be sound.

use odp::trading::ContextName;
use odp::types::conformance::{conforms, spec_conforms};
use odp::types::signature::{InterfaceTypeBuilder, OutcomeSig};
use odp::types::{InterfaceType, TypeSpec};
use odp::wire::Value;
use proptest::prelude::*;

fn arb_spec(depth: u32) -> BoxedStrategy<TypeSpec> {
    let leaf = prop_oneof![
        Just(TypeSpec::Unit),
        Just(TypeSpec::Bool),
        Just(TypeSpec::Int),
        Just(TypeSpec::Str),
        Just(TypeSpec::Bytes),
        Just(TypeSpec::Any),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = arb_spec(depth - 1);
        prop_oneof![
            4 => leaf,
            1 => inner.clone().prop_map(TypeSpec::seq),
            1 => proptest::collection::vec(("[a-c]{1,3}", inner), 0..3).prop_map(TypeSpec::Record),
        ]
        .boxed()
    }
}

fn arb_interface() -> BoxedStrategy<InterfaceType> {
    proptest::collection::btree_map("[a-e]{1,4}", (proptest::collection::vec(arb_spec(1), 0..3), proptest::collection::vec(arb_spec(1), 0..2)), 0..4)
        .prop_map(|ops| {
            let mut b = InterfaceTypeBuilder::new();
            for (name, (params, results)) in ops {
                b = b.interrogation(name, params, vec![OutcomeSig::ok(results)]);
            }
            b.build()
        })
        .boxed()
}

proptest! {
    // --- Conformance is a preorder ------------------------------------

    #[test]
    fn conformance_is_reflexive(ty in arb_interface()) {
        prop_assert!(conforms(&ty, &ty).is_ok());
    }

    #[test]
    fn conformance_everything_conforms_to_empty(ty in arb_interface()) {
        prop_assert!(conforms(&ty, &InterfaceType::empty()).is_ok());
    }

    #[test]
    fn spec_conformance_reflexive_and_any_is_top(spec in arb_spec(2)) {
        prop_assert!(spec_conforms(&spec, &spec));
        prop_assert!(spec_conforms(&spec, &TypeSpec::Any));
    }

    #[test]
    fn conformance_transitive_on_op_subsets(ops in proptest::collection::btree_set("[a-e]{1,4}", 0..6)) {
        // Build three interfaces over nested subsets of the same ops:
        // big ⊇ mid ⊇ small; conformance must chain.
        let ops: Vec<String> = ops.into_iter().collect();
        let make = |n: usize| {
            let mut b = InterfaceTypeBuilder::new();
            for name in &ops[..n] {
                b = b.interrogation(name.clone(), vec![TypeSpec::Int], vec![OutcomeSig::ok(vec![])]);
            }
            b.build()
        };
        let small = make(ops.len() / 3);
        let mid = make(ops.len() * 2 / 3);
        let big = make(ops.len());
        prop_assert!(conforms(&big, &mid).is_ok());
        prop_assert!(conforms(&mid, &small).is_ok());
        prop_assert!(conforms(&big, &small).is_ok());
    }

    // --- Wire format laws -----------------------------------------------

    #[test]
    fn marshal_unmarshal_identity_for_payload_vectors(
        ints in proptest::collection::vec(any::<i64>(), 0..8),
        strs in proptest::collection::vec(".{0,12}", 0..4),
    ) {
        let mut values: Vec<Value> = ints.iter().map(|i| Value::Int(*i)).collect();
        values.extend(strs.iter().map(|s| Value::str(s.clone())));
        let bytes = odp::wire::marshal(&values);
        let rt = odp::wire::unmarshal(&bytes).expect("round trip");
        prop_assert_eq!(values, rt);
    }

    #[test]
    fn marshal_is_deterministic(ints in proptest::collection::vec(any::<i64>(), 0..8)) {
        let values: Vec<Value> = ints.iter().map(|i| Value::Int(*i)).collect();
        prop_assert_eq!(odp::wire::marshal(&values), odp::wire::marshal(&values));
    }

    // --- Context-relative naming laws -------------------------------------

    #[test]
    fn name_canonicalization_idempotent(segs in proptest::collection::vec(
        prop_oneof![Just("..".to_owned()), "[a-d]{1,3}".prop_map(|s| s)], 0..8
    )) {
        let name = ContextName::new(segs).expect("valid segments");
        let once = name.canonicalize();
        prop_assert_eq!(once.canonicalize(), once);
    }

    #[test]
    fn export_then_rebase_is_prefixing(segs in proptest::collection::vec("[a-d]{1,3}", 0..6)) {
        // For names with no parent segments, export+rebase(back) must equal
        // back/name.
        let name = ContextName::new(segs).expect("valid");
        let rebased = name.exported().rebase("back");
        let expected = ContextName::new(["back"]).unwrap().join(&name);
        prop_assert_eq!(rebased, expected);
    }

    // --- Deadlock detector soundness --------------------------------------

    #[test]
    fn detector_never_admits_a_cycle(edges in proptest::collection::vec((0u64..6, 0u64..6), 0..20)) {
        use odp::tx::DeadlockDetector;
        use odp::types::TxnId;
        let d = DeadlockDetector::new();
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        for (a, b) in edges {
            if a != b && d.try_wait(TxnId(a), &[TxnId(b)]) {
                admitted.push((a, b));
            }
        }
        // The admitted graph must be acyclic: topological check.
        let mut graph: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        for (a, b) in &admitted {
            graph.entry(*a).or_default().push(*b);
        }
        fn has_cycle(
            node: u64,
            graph: &std::collections::HashMap<u64, Vec<u64>>,
            visiting: &mut std::collections::HashSet<u64>,
            done: &mut std::collections::HashSet<u64>,
        ) -> bool {
            if done.contains(&node) {
                return false;
            }
            if !visiting.insert(node) {
                return true;
            }
            for next in graph.get(&node).into_iter().flatten() {
                if has_cycle(*next, graph, visiting, done) {
                    return true;
                }
            }
            visiting.remove(&node);
            done.insert(node);
            false
        }
        let mut visiting = std::collections::HashSet::new();
        let mut done = std::collections::HashSet::new();
        for node in graph.keys().copied().collect::<Vec<_>>() {
            prop_assert!(!has_cycle(node, &graph, &mut visiting, &mut done),
                "detector admitted a deadlock cycle: {admitted:?}");
        }
    }

    // --- Group view laws ----------------------------------------------------

    #[test]
    fn view_changes_strictly_increase_version(adds in 1usize..6, removes in 0usize..3) {
        use odp::groups::GroupView;
        use odp::types::{GroupId, InterfaceId, NodeId};
        let mut view = GroupView::initial(GroupId(1), vec![]);
        let mut last = view.version;
        for i in 0..adds {
            view = view.with_member(odp::wire::InterfaceRef::new(
                InterfaceId(i as u64),
                NodeId(1),
                InterfaceType::empty(),
            ));
            prop_assert!(view.version > last);
            last = view.version;
        }
        for i in 0..removes.min(adds) {
            view = view.without_member(InterfaceId(i as u64));
            prop_assert!(view.version > last);
            last = view.version;
        }
        // Codec round-trip preserves everything.
        let decoded = GroupView::decode(&view.encode()).expect("decode");
        prop_assert_eq!(decoded, view);
    }

    // --- Lease/GC laws -------------------------------------------------------

    #[test]
    fn live_set_is_monotone_in_roots(pins in proptest::collection::btree_set(0u64..10, 0..5),
                                     edges in proptest::collection::vec((0u64..10, 0u64..10), 0..15)) {
        use odp::gc::RefRegistry;
        use odp::types::InterfaceId;
        use std::time::Duration;
        let reg_small = RefRegistry::new(Duration::from_secs(60));
        let reg_big = RefRegistry::new(Duration::from_secs(60));
        for (a, b) in &edges {
            reg_small.add_edge(InterfaceId(*a), InterfaceId(*b));
            reg_big.add_edge(InterfaceId(*a), InterfaceId(*b));
        }
        for p in &pins {
            reg_small.pin(InterfaceId(*p));
            reg_big.pin(InterfaceId(*p));
        }
        reg_big.pin(InterfaceId(99));
        let small = reg_small.live_set();
        let big = reg_big.live_set();
        prop_assert!(small.is_subset(&big), "adding a root shrank the live set");
    }
}
