//! Chaos soak tests: deterministic fault schedules replayed against live
//! worlds, with safety invariants checked after every run.
//!
//! Set `CHAOS_SEED` to soak a different seed family (`scripts/soak.sh`
//! loops over several); the default family is fixed so CI runs are
//! reproducible.

use odp::chaos::{run, ChaosConfig, ChaosProfile, ChaosReport, FaultSchedule, Topology};
use odp::core::CircuitBreakerPolicy;
use odp::net::NetFault;
use odp::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA11CE)
}

/// On a bad run, dump the tail of the merged telemetry timeline (chaos
/// events + sampled spans, causally ordered) and the flight-recorder
/// freeze dump before the assertions fire — `scripts/soak.sh` surfaces
/// these lines from the log.
fn dump_timeline_if_bad(report: &ChaosReport, label: &str) {
    if report.invariants.ok() && report.probe_ok {
        return;
    }
    eprintln!("=== event timeline tail ({label}) ===");
    let tail = report.event_timeline.len().saturating_sub(40);
    for line in &report.event_timeline[tail..] {
        eprintln!("{line}");
    }
    eprintln!("=== end timeline ===");
    eprintln!("=== flight recorder dump ({label}) ===");
    if report.recorder_dump.is_empty() {
        // Probe failures don't trip the runner's invariant trigger;
        // freeze the always-on ring ourselves so the dump is never blank.
        let hub = odp::telemetry::hub();
        for line in hub.recorder().trigger("soak.probe_failed", hub.now_ns()) {
            eprintln!("{line}");
        }
        hub.recorder().thaw();
    } else {
        for line in &report.recorder_dump {
            eprintln!("{line}");
        }
    }
    eprintln!("=== end recorder ===");
}

/// Replays every profile (six seeded schedules — crash/restart, partition
/// heal, loss burst, latency spike, forced relocation, mixed) and checks
/// the invariant sweep: no committed record lost, at-most-once effect,
/// interface reachable after heal.
#[test]
fn soak_every_profile_holds_invariants() {
    let topo = Topology::standard();
    for (i, profile) in ChaosProfile::ALL.into_iter().enumerate() {
        let seed = base_seed().wrapping_add(i as u64 * 7919);
        let schedule = FaultSchedule::generate(profile, seed, &topo);
        let report = run(&ChaosConfig::new(schedule)).expect("harness runs");
        dump_timeline_if_bad(&report, &format!("{profile:?} seed {seed}"));
        assert!(
            report.invariants.ok(),
            "{profile:?} seed {seed}: {}",
            report.invariants
        );
        assert!(
            report.probe_ok,
            "{profile:?} seed {seed}: survivor unreachable"
        );
        assert!(
            !report.committed.is_empty(),
            "{profile:?} seed {seed}: no call ever committed — harness not exercising anything"
        );
        match profile {
            ChaosProfile::CrashRestart | ChaosProfile::Mixed => {
                assert!(report.restarts >= 1, "{profile:?}: no restart performed");
            }
            ChaosProfile::ForcedRelocation => {
                assert!(
                    report.relocations >= 1,
                    "{profile:?}: no relocation performed"
                );
            }
            _ => {}
        }
    }
}

/// The whole point of seeded schedules: two runs of the same seed apply
/// the identical action sequence and leave the identical network fault
/// log. (Client progress is timing-dependent and deliberately excluded —
/// safety is judged by the invariant sweep, reproducibility by the
/// timeline.)
#[test]
fn same_seed_produces_identical_fault_timelines() {
    let topo = Topology::standard();
    for profile in ChaosProfile::ALL {
        let a = FaultSchedule::generate(profile, 0xDE7E12, &topo);
        let b = FaultSchedule::generate(profile, 0xDE7E12, &topo);
        assert_eq!(a, b, "{profile:?}: schedule generation not deterministic");
    }
    let schedule = FaultSchedule::generate(ChaosProfile::Mixed, 0xDE7E12, &topo);
    let first = run(&ChaosConfig::new(schedule.clone())).expect("first run");
    let second = run(&ChaosConfig::new(schedule)).expect("second run");
    assert_eq!(
        first.timeline, second.timeline,
        "same seed must replay the identical fault timeline"
    );
    assert!(first.invariants.ok(), "{}", first.invariants);
    assert!(second.invariants.ok(), "{}", second.invariants);
}

/// The flight recorder's contract for post-mortems: after a run full of
/// injected faults, freezing the always-on ring yields a non-empty dump
/// containing those faults — even though the run was clean (so the
/// runner's own invariant trigger never fired and `recorder_dump` is
/// empty) and regardless of the `recording` switch.
#[test]
fn flight_recorder_dump_is_non_empty_after_injected_faults() {
    let topo = Topology::standard();
    let schedule =
        FaultSchedule::generate(ChaosProfile::CrashRestart, base_seed() ^ 0xF11A17, &topo);
    let report = run(&ChaosConfig::new(schedule)).expect("harness runs");
    assert!(report.invariants.ok(), "{}", report.invariants);
    assert!(
        report.recorder_dump.is_empty(),
        "clean run must not carry a freeze dump"
    );

    // Same trigger path the runner takes on an invariant violation. A
    // breaker opening in this run (or a concurrently running test — the
    // recorder is process-global) may already have frozen the ring, so
    // thaw first and stamp a marker we can assert on deterministically.
    let hub = odp::telemetry::hub();
    hub.recorder().thaw();
    hub.event("soak.marker", 9, 0, "injected-fault run complete");
    let dump = hub.recorder().trigger("soak.injected", hub.now_ns());
    assert!(
        !dump.is_empty(),
        "flight recorder empty after a fault-injecting run"
    );
    assert!(
        dump.iter().any(|l| l.contains("soak.marker")),
        "dump must contain entries up to the freeze: {dump:?}"
    );
    assert!(
        hub.recorder().stats().appended > 0,
        "always-on recorder captured nothing during the run"
    );
    assert!(hub.recorder().last_dump().is_some());
    hub.recorder().thaw();
}

fn echo_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("echo", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .build()
}

fn echo_servant() -> Arc<dyn Servant> {
    Arc::new(FnServant::new(echo_type(), |_op, _args, _ctx| {
        Outcome::ok(vec![Value::Int(7)])
    }))
}

/// Deadline propagation: a call stamped with a 500 ms deadline must not
/// outlive `deadline + one retry interval`, even when the server is
/// silently partitioned away (the worst case: every attempt runs its full
/// per-attempt budget instead of failing fast).
#[test]
fn deadline_bounds_call_latency_under_partition() {
    let world = World::builder().capsules(2).build();
    let server = world.capsule(0);
    let client = world.capsule(1);
    let reference = server.export(echo_servant());

    let deadline = Duration::from_millis(500);
    let qos = CallQos::with_deadline(deadline);
    let binding = client.bind_with(reference, TransparencyPolicy::default().with_qos(qos));
    assert!(binding.interrogate("echo", vec![]).is_ok(), "sanity call");

    world
        .net()
        .apply(&NetFault::Partition(client.node(), server.node()));
    for attempt in 0..3 {
        let start = Instant::now();
        let result = binding.interrogate("echo", vec![]);
        let elapsed = start.elapsed();
        assert!(result.is_err(), "partitioned call cannot succeed");
        assert!(
            elapsed <= deadline + qos.retry_interval,
            "attempt {attempt}: call took {elapsed:?}, budget is {:?} + {:?}",
            deadline,
            qos.retry_interval
        );
    }
}

/// Circuit breaking: consecutive communication failures trip the breaker
/// open (calls shed fast, without burning their full deadline); after the
/// cooldown a half-open probe reaches the restarted server and the
/// breaker recloses.
#[test]
fn breaker_sheds_when_open_and_probes_back_after_restart() {
    let world = World::builder().capsules(0).build();
    let server_node = NodeId(2);
    let client_node = NodeId(3);
    let server = world.spawn_capsule_at(server_node).expect("spawn server");
    let client = world.spawn_capsule_at(client_node).expect("spawn client");
    let reference = server.export(echo_servant());
    let iface = reference.iface;

    let deadline = Duration::from_millis(200);
    let cooldown = Duration::from_millis(100);
    let policy = TransparencyPolicy::default()
        .with_qos(CallQos::with_deadline(deadline))
        .with_failure(None) // isolate the breaker from retry masking
        .with_breaker(Some(CircuitBreakerPolicy {
            failure_threshold: 3,
            cooldown,
        }));
    let binding = client.bind_with(reference, policy);
    assert!(binding.interrogate("echo", vec![]).is_ok(), "sanity call");

    server.crash();
    let mut shed = false;
    for _ in 0..20 {
        match binding.interrogate("echo", vec![]) {
            Err(InvokeError::CircuitOpen) => {
                shed = true;
                break;
            }
            Err(_) => {}
            Ok(_) => panic!("call succeeded against a crashed server"),
        }
    }
    assert!(shed, "breaker never opened after consecutive failures");

    // Open breaker = load shedding: the failure is immediate, nowhere
    // near the call deadline.
    let start = Instant::now();
    assert!(matches!(
        binding.interrogate("echo", vec![]),
        Err(InvokeError::CircuitOpen)
    ));
    assert!(
        start.elapsed() < deadline / 2,
        "shed call burned {:?} of a {:?} deadline",
        start.elapsed(),
        deadline
    );

    // Restart the server under the same identity, epoch bumped.
    let fresh = world.spawn_capsule_at(server_node).expect("restart server");
    fresh.export_at(iface, 1, echo_servant(), ExportConfig::default());
    std::thread::sleep(cooldown + Duration::from_millis(20));

    let mut reconnected = false;
    for _ in 0..20 {
        if binding.interrogate("echo", vec![]).is_ok() {
            reconnected = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(reconnected, "half-open probe never reconnected");
    assert!(
        binding.interrogate("echo", vec![]).is_ok(),
        "breaker must be closed again after a successful probe"
    );
}

/// Durability end to end: commit acknowledgements received before a crash
/// must survive recovery, including across a checkpoint boundary.
#[test]
fn committed_records_survive_crash_and_recovery() {
    let topo = Topology::standard();
    // A tight checkpoint interval forces snapshot + log-tail recovery
    // rather than pure replay.
    let schedule = FaultSchedule::generate(ChaosProfile::CrashRestart, base_seed() ^ 0x5EED, &topo);
    let mut config = ChaosConfig::new(schedule);
    config.checkpoint_every = 4;
    let report = run(&config).expect("harness runs");
    dump_timeline_if_bad(&report, "durability");
    assert!(report.invariants.ok(), "{}", report.invariants);
    assert!(report.restarts >= 1);
    for &(client, seq) in &report.committed {
        assert!(
            report.final_ledger.contains_key(&(client, seq)),
            "committed ({client},{seq}) lost across crash"
        );
    }
}
