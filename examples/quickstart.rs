//! Quickstart: a distributed bank account with selective transparency.
//!
//! Demonstrates the core computational model (an ADT with multiple
//! terminations invoked through a reference) and two transparencies at
//! work: access (marshalling + REX happen invisibly) and location (the
//! account migrates mid-session and the client never notices).
//!
//! Run with: `cargo run -p odp --example quickstart`

use odp::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The account ADT: balance / deposit / withdraw with an `overdrawn`
/// termination — "each operation should be permitted to have a range of
/// possible outcomes" (§5.1 of the paper).
struct Account {
    balance: AtomicI64,
}

fn account_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("balance", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "deposit",
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .interrogation(
            "withdraw",
            vec![TypeSpec::Int],
            vec![
                OutcomeSig::ok(vec![TypeSpec::Int]),
                OutcomeSig::new("overdrawn", vec![TypeSpec::Int]),
            ],
        )
        .build()
}

impl Servant for Account {
    fn interface_type(&self) -> InterfaceType {
        account_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "balance" => Outcome::ok(vec![Value::Int(self.balance.load(Ordering::SeqCst))]),
            "deposit" => {
                let n = args[0].as_int().unwrap_or(0);
                Outcome::ok(vec![Value::Int(
                    self.balance.fetch_add(n, Ordering::SeqCst) + n,
                )])
            }
            "withdraw" => {
                let n = args[0].as_int().unwrap_or(0);
                let current = self.balance.load(Ordering::SeqCst);
                if current < n {
                    Outcome::new("overdrawn", vec![Value::Int(current)])
                } else {
                    Outcome::ok(vec![Value::Int(
                        self.balance.fetch_sub(n, Ordering::SeqCst) - n,
                    )])
                }
            }
            _ => Outcome::fail("no such operation"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.balance.load(Ordering::SeqCst).to_be_bytes().to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
        self.balance
            .store(i64::from_be_bytes(arr), Ordering::SeqCst);
        Ok(())
    }
}

fn main() {
    // Three capsules (plus the system capsule hosting the relocator) on a
    // simulated network with 1 ms one-way latency.
    let world = World::builder()
        .capsules(3)
        .latency(std::time::Duration::from_millis(1))
        .build();

    // Export the account on capsule 0.
    let account = Arc::new(Account {
        balance: AtomicI64::new(100),
    });
    let reference = world.capsule(0).export(account);
    println!("exported account as {:?}", reference.iface);

    // A client on capsule 2 binds with the default transparency policy
    // (location + failure transparency selected).
    let client = world.capsule(2).bind(reference.clone());
    let out = client.interrogate("deposit", vec![Value::Int(50)]).unwrap();
    println!("deposit 50   -> balance {}", out.int().unwrap());

    let out = client
        .interrogate("withdraw", vec![Value::Int(30)])
        .unwrap();
    println!("withdraw 30  -> balance {}", out.int().unwrap());

    // Overdraw: an application termination, not an error.
    let out = client
        .interrogate("withdraw", vec![Value::Int(10_000)])
        .unwrap();
    println!(
        "withdraw 10k -> termination `{}` (balance {})",
        out.termination,
        out.int().unwrap()
    );

    // Migrate the account to capsule 1 — §5.5 of the paper. The client's
    // binding follows the forwarding tombstone and re-targets itself.
    world
        .capsule(0)
        .migrate_to(reference.iface, world.capsule(1))
        .unwrap();
    println!(
        "account migrated: {} -> {}",
        world.capsule(0).node(),
        world.capsule(1).node()
    );

    let out = client.interrogate("balance", vec![]).unwrap();
    println!(
        "balance      -> {} (transparently, post-migration)",
        out.int().unwrap()
    );
    println!(
        "client now bound to {} (epoch {})",
        client.target().home,
        client.target().epoch
    );

    // Even if the old home crashes entirely, the relocation service
    // recovers the location.
    world.capsule(0).crash();
    let out = client.interrogate("deposit", vec![Value::Int(1)]).unwrap();
    println!(
        "after old home crashed: deposit 1 -> balance {}",
        out.int().unwrap()
    );
}
