//! Trace demo: one client interrogation, one causally-linked span tree.
//!
//! Builds a four-capsule world, replicates a tally servant across three of
//! them, and interrogates the group from the fourth with full sampling on.
//! The interrogation fans out through the whole engineering stack — client
//! stub, replication layer, access layer, the sequencer's nucleus dispatch,
//! and the relay dispatches on the other members — and every hop lands on
//! the same trace. The demo then prints:
//!
//! 1. the span tree of that one call (via the capsule's exported
//!    [`TelemetryServant`], i.e. through an ordinary ODP interrogation);
//! 2. the merged event/span timeline tail;
//! 3. the per-layer metric snapshot (calls, failures, p50/p95/p99).
//!
//! Run with: `cargo trace-demo` (alias for
//! `cargo run -p odp --release --example trace_demo`).

use odp::groups::{replicate, GroupPolicy};
use odp::prelude::*;
use odp::telemetry::{hub, Sampling};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn tally() -> Arc<dyn Servant> {
    struct Tally(AtomicI64);
    impl Servant for Tally {
        fn interface_type(&self) -> InterfaceType {
            InterfaceTypeBuilder::new()
                .interrogation(
                    "tally",
                    vec![TypeSpec::Int],
                    vec![OutcomeSig::ok(vec![TypeSpec::Int])],
                )
                .build()
        }
        fn dispatch(&self, _op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
            let add = args.first().and_then(Value::as_int).unwrap_or(0);
            Outcome::ok(vec![Value::Int(
                self.0.fetch_add(add, Ordering::SeqCst) + add,
            )])
        }
        fn snapshot(&self) -> Option<Vec<u8>> {
            Some(self.0.load(Ordering::SeqCst).to_be_bytes().to_vec())
        }
        fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
            let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
            self.0.store(i64::from_be_bytes(arr), Ordering::SeqCst);
            Ok(())
        }
    }
    Arc::new(Tally(AtomicI64::new(0)))
}

fn main() {
    hub().set_recording(true);
    hub().set_sampling(Sampling::All);

    let world = World::builder().capsules(4).build();
    let group = replicate(&world.capsules()[..3], &tally, GroupPolicy::Active);
    let client = group.bind_via(world.capsule(3));

    let out = client.interrogate("tally", vec![Value::Int(42)]).unwrap();
    println!("interrogation -> {} {:?}\n", out.termination, out.results);

    // The newest client-rooted span is our call; ask the telemetry plane
    // about it through the management interface, like any ODP client.
    let root = hub()
        .spans()
        .into_iter()
        .rfind(|s| s.layer == "client" && s.parent_span == 0)
        .expect("the interrogation was sampled");
    let tel_ref = world
        .capsule(3)
        .export(Arc::new(TelemetryServant::new(world.capsule(3))));
    let plane = world.capsule(0).bind(tel_ref);

    println!("=== span tree (trace {}) ===", root.trace_id);
    let tree = plane
        .interrogate("trace", vec![Value::Int(root.trace_id as i64)])
        .unwrap();
    for line in tree.result().unwrap().as_seq().unwrap() {
        println!("{}", line.as_str().unwrap_or("?"));
    }

    println!("\n=== timeline tail ===");
    let timeline = plane.interrogate("timeline", vec![Value::Int(15)]).unwrap();
    for line in timeline.result().unwrap().as_seq().unwrap() {
        println!("{}", line.as_str().unwrap_or("?"));
    }

    println!("\n=== per-layer metrics ===");
    let metrics = plane.interrogate("metrics", vec![]).unwrap();
    for row in metrics.result().unwrap().as_seq().unwrap() {
        let f = |k: &str| row.field(k).and_then(Value::as_int).unwrap_or(0);
        let layer = row.field("layer").and_then(Value::as_str).unwrap_or("?");
        println!(
            "node={:<2} layer={:<18} calls={:<5} failures={:<3} p50={}ns p95={}ns p99={}ns",
            f("node"),
            layer,
            f("calls"),
            f("failures"),
            f("p50_ns"),
            f("p95_ns"),
            f("p99_ns"),
        );
    }
}
