//! A fault-tolerant ledger: replication and failure transparency combined.
//!
//! An append-only ledger is replicated across three capsules with active
//! replication (§5.3); every replica also write-ahead-logs mutations and
//! checkpoints periodically (§5.5). The demo kills the sequencer
//! mid-stream, shows the group failing over with no lost acknowledged
//! entries, then kills *everything* and recovers the ledger on a fresh
//! capsule from checkpoint + log.
//!
//! Run with: `cargo run -p odp --example fault_tolerant_ledger`

use odp::groups::{replicate, GroupPolicy};
use odp::prelude::*;
use odp::storage::{recover, StableRepository, WriteAheadLog};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

struct Ledger {
    entries: Mutex<Vec<String>>,
}

fn ledger_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation(
            "append",
            vec![TypeSpec::Str],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .interrogation("len", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "entry",
            vec![TypeSpec::Int],
            vec![
                OutcomeSig::ok(vec![TypeSpec::Str]),
                OutcomeSig::new("out_of_range", vec![]),
            ],
        )
        .build()
}

fn new_ledger() -> Arc<dyn Servant> {
    Arc::new(Ledger {
        entries: Mutex::new(Vec::new()),
    })
}

impl Servant for Ledger {
    fn interface_type(&self) -> InterfaceType {
        ledger_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "append" => {
                let mut entries = self.entries.lock();
                entries.push(args[0].as_str().unwrap_or("").to_owned());
                Outcome::ok(vec![Value::Int(entries.len() as i64)])
            }
            "len" => Outcome::ok(vec![Value::Int(self.entries.lock().len() as i64)]),
            "entry" => {
                let i = args[0].as_int().unwrap_or(-1);
                match self.entries.lock().get(i as usize) {
                    Some(e) => Outcome::ok(vec![Value::str(e.clone())]),
                    None => Outcome::new("out_of_range", vec![]),
                }
            }
            _ => Outcome::fail("no such op"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let entries = self.entries.lock();
        let values: Vec<Value> = entries.iter().map(|e| Value::str(e.clone())).collect();
        Some(odp::wire::marshal(&values).to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let values = odp::wire::unmarshal(snapshot).map_err(|e| e.to_string())?;
        *self.entries.lock() = values
            .iter()
            .map(|v| v.as_str().unwrap_or("").to_owned())
            .collect();
        Ok(())
    }
}

fn main() {
    let world = World::builder().capsules(5).build();

    // --- Phase 1: replication transparency ------------------------------
    println!("=== replication: 3-member active group ===");
    let group = replicate(&world.capsules()[..3], &new_ledger, GroupPolicy::Active);
    let client = group.bind_via(world.capsule(4));
    for i in 1..=5 {
        let out = client
            .interrogate("append", vec![Value::str(format!("entry #{i}"))])
            .unwrap();
        println!("appended entry #{i} (ledger length {})", out.int().unwrap());
    }

    println!("killing the sequencer ({})…", world.capsule(0).node());
    world.capsule(0).crash();
    let out = client
        .interrogate("append", vec![Value::str("entry #6 (post-failover)")])
        .unwrap();
    println!(
        "appended through the promoted backup (length {}); promotions: {}",
        out.int().unwrap(),
        group.members()[1]
            .promotions
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    std::thread::sleep(Duration::from_millis(200));
    println!(
        "surviving replicas agree: member1={} member2={} entries",
        group.members()[1]
            .applied
            .load(std::sync::atomic::Ordering::Relaxed),
        group.members()[2]
            .applied
            .load(std::sync::atomic::Ordering::Relaxed),
    );

    // --- Phase 2: failure transparency via checkpoint + log -------------
    println!("\n=== recovery: checkpoint + write-ahead log ===");
    let wal = Arc::new(WriteAheadLog::new());
    let repo = Arc::new(StableRepository::new(Duration::from_micros(50)));
    let solo = new_ledger();
    let logging = odp::storage::LoggingLayer::new(
        &solo,
        Arc::clone(&wal),
        Arc::clone(&repo),
        odp::storage::CheckpointPolicy { every_n_ops: 4 },
        Arc::new(|op| op == "append"),
    );
    let solo_ref = world.capsule(3).export_with(
        solo,
        ExportConfig {
            layers: vec![logging as Arc<dyn odp::core::ServerLayer>],
            ..ExportConfig::default()
        },
    );
    let solo_client = world.capsule(4).bind(solo_ref.clone());
    for i in 1..=10 {
        solo_client
            .interrogate("append", vec![Value::str(format!("audit record {i}"))])
            .unwrap();
    }
    println!(
        "10 appends logged; WAL tail {} records (rest captured by checkpoints)",
        wal.tail_for(solo_ref.iface, 0).len()
    );

    println!("crashing the ledger's host…");
    world.capsule(3).crash();

    let (new_ref, replayed) = recover(
        world.capsule(4),
        solo_ref.iface,
        &new_ledger,
        &repo,
        &wal,
        ExportConfig::default(),
        0,
    )
    .unwrap();
    world
        .capsule(4)
        .register_location(solo_ref.iface, new_ref.home, new_ref.epoch)
        .unwrap();
    println!(
        "recovered at {} (epoch {}), replayed {replayed} logged interactions",
        new_ref.home, new_ref.epoch
    );
    let out = solo_client.interrogate("len", vec![]).unwrap();
    println!(
        "ledger length after recovery: {} (expected 10)",
        out.int().unwrap()
    );
    let out = solo_client
        .interrogate("entry", vec![Value::Int(9)])
        .unwrap();
    println!("last entry: {:?}", out.result().unwrap().as_str().unwrap());
}
