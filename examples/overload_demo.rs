//! Overload smoke scenario: the flat knee, live.
//!
//! Exports a fixed-service-time servant behind an [`AdmissionLayer`]
//! (bounded per-priority queues, deadline-aware shedding), then drives it
//! with the open-loop load generator at half capacity and at twice
//! capacity. The point of the demo: past saturation, goodput holds near
//! the knee and excess calls come back as `Rejected { retry_after }` in
//! local time, instead of the whole offered load timing out together.
//!
//! Run with `cargo overload` (alias) or
//! `cargo run -p odp --release --example overload_demo`.

use odp::chaos::{run_load, LoadGenConfig, LoadOp, LoadReport, OpResult};
use odp::core::{AdmissionLayer, AdmissionPolicy, ServerLayer};
use odp::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Fixed servant service time: capacity = max_concurrent / SERVICE.
const SERVICE: Duration = Duration::from_millis(5);

fn print_report(label: &str, offered: f64, report: &LoadReport) {
    println!(
        "  {label:<14} offered {offered:>5.0}/s  sent {:>4}  ok {:>4}  shed {:>4}  failed {:>2}  \
         goodput {:>4.0}/s  ok p99 {:>6.2} ms  shed p99 {:>5.2} ms",
        report.sent(),
        report.ok(),
        report.shed(),
        report.failed(),
        report.goodput_per_sec(),
        report.ok_latency_at(0.99) as f64 / 1e6,
        report.shed_latency_at(0.99) as f64 / 1e6,
    );
}

fn main() {
    let world = World::builder().capsules(2).workers(16).build();
    let policy = AdmissionPolicy {
        max_concurrent: 2,
        queue_capacity: 8,
        retry_after: Duration::from_millis(1),
        max_wait: Duration::from_millis(150),
    };
    let admission = AdmissionLayer::with_node(policy, world.capsule(0).node().raw());

    let ty = InterfaceTypeBuilder::new()
        .interrogation("work", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .build();
    let servant = FnServant::new(ty, |_op, _args, _ctx| {
        std::thread::sleep(SERVICE);
        Outcome::ok(vec![Value::Int(1)])
    });
    let reference = world.capsule(0).export_with(
        Arc::new(servant),
        ExportConfig {
            layers: vec![admission.clone() as Arc<dyn ServerLayer>],
            ..ExportConfig::default()
        },
    );
    let binding = Arc::new(
        world.capsule(1).bind_with(
            reference,
            TransparencyPolicy::default()
                .with_qos(CallQos::with_deadline(Duration::from_millis(250)))
                .with_failure(None),
        ),
    );
    for _ in 0..4 {
        binding.interrogate("work", vec![]).expect("warmup");
    }

    let capacity = policy.max_concurrent as f64 / SERVICE.as_secs_f64();
    println!(
        "overload demo: capacity ~{capacity:.0} calls/s \
         (service {SERVICE:?} x {} lanes, queue {})",
        policy.max_concurrent, policy.queue_capacity
    );

    for (label, multiple) in [("half capacity", 0.5), ("2x capacity", 2.0)] {
        let b = Arc::clone(&binding);
        let ops = vec![LoadOp::new("work", 1, move || {
            match b.interrogate("work", vec![]) {
                Ok(_) => OpResult::Ok,
                Err(InvokeError::Rejected { .. }) => OpResult::Shed,
                Err(_) => OpResult::Failed,
            }
        })];
        let offered = capacity * multiple;
        let report = run_load(
            &LoadGenConfig {
                seed: 7,
                rate_per_sec: offered,
                duration: Duration::from_secs(1),
                workers: 48,
            },
            &ops,
        );
        print_report(label, offered, &report);
    }

    println!("\nadmission queues:");
    for gauge in odp::telemetry::hub().metrics().snapshot_gauges() {
        println!(
            "  node {} {:<16} depth {} high-water {} enqueued {} dropped {}",
            gauge.node, gauge.queue, gauge.depth, gauge.high_water, gauge.enqueued, gauge.dropped
        );
    }
    println!(
        "layer counters: admitted {} shed {} (expired {})",
        admission
            .admitted
            .load(std::sync::atomic::Ordering::Relaxed),
        admission.shed.load(std::sync::atomic::Ordering::Relaxed),
        admission.expired.load(std::sync::atomic::Ordering::Relaxed),
    );
}
