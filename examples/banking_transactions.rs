//! Distributed banking under concurrency transparency (§5.2).
//!
//! Accounts live on different capsules, each behind a concurrency-control
//! layer generated from a declarative separation constraint. Concurrent
//! clients run transfer transactions; two-phase commit makes each transfer
//! all-or-nothing, strict two-phase locking isolates them, and the
//! deadlock machinery keeps crossed transfers from hanging. The invariant
//! — total money conserved — holds throughout.
//!
//! Run with: `cargo run -p odp --example banking_transactions`

use odp::prelude::*;
use odp::tx::{SeparationConstraint, TxnError, TxnSystem};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Account {
    name: &'static str,
    balance: AtomicI64,
}

fn account_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation("balance", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Int])])
        .interrogation(
            "deposit",
            vec![TypeSpec::Int],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .interrogation(
            "withdraw",
            vec![TypeSpec::Int],
            vec![
                OutcomeSig::ok(vec![TypeSpec::Int]),
                OutcomeSig::new("insufficient", vec![TypeSpec::Int]),
            ],
        )
        .build()
}

impl Servant for Account {
    fn interface_type(&self) -> InterfaceType {
        account_type()
    }

    fn dispatch(&self, op: &str, args: Vec<Value>, _ctx: &CallCtx) -> Outcome {
        match op {
            "balance" => Outcome::ok(vec![Value::Int(self.balance.load(Ordering::SeqCst))]),
            "deposit" => {
                let n = args[0].as_int().unwrap_or(0);
                Outcome::ok(vec![Value::Int(
                    self.balance.fetch_add(n, Ordering::SeqCst) + n,
                )])
            }
            "withdraw" => {
                let n = args[0].as_int().unwrap_or(0);
                let current = self.balance.load(Ordering::SeqCst);
                if current < n {
                    Outcome::new("insufficient", vec![Value::Int(current)])
                } else {
                    Outcome::ok(vec![Value::Int(
                        self.balance.fetch_sub(n, Ordering::SeqCst) - n,
                    )])
                }
            }
            _ => Outcome::fail("no such op"),
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.balance.load(Ordering::SeqCst).to_be_bytes().to_vec())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = snapshot.try_into().map_err(|_| "bad snapshot")?;
        self.balance
            .store(i64::from_be_bytes(arr), Ordering::SeqCst);
        Ok(())
    }
}

fn main() {
    // Four account hosts + one client capsule.
    let world = World::builder().capsules(5).build();
    let system = TxnSystem::new();

    let names = ["alice", "bob", "carol", "dave"];
    let mut accounts = Vec::new();
    let mut refs = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let runtime = system.install_on_with(world.capsule(i), Duration::from_millis(300));
        let account = Arc::new(Account {
            name,
            balance: AtomicI64::new(1_000),
        });
        let r = world.capsule(i).export_with(
            Arc::clone(&account) as Arc<dyn Servant>,
            ExportConfig {
                layers: vec![runtime.concurrency_layer(
                    &(Arc::clone(&account) as Arc<dyn Servant>),
                    SeparationConstraint::readers(&["balance"]),
                )],
                ..ExportConfig::default()
            },
        );
        accounts.push(account);
        refs.push(r);
    }

    let total = || -> i64 {
        accounts
            .iter()
            .map(|a| a.balance.load(Ordering::SeqCst))
            .sum()
    };
    println!("opening balances: 4 × 1000 = {}", total());

    // One committed transfer, narrated.
    let client = world.capsule(4);
    let txn = system.begin(client);
    let alice = client.bind(refs[0].clone());
    let bob = client.bind(refs[1].clone());
    txn.call(&alice, "withdraw", vec![Value::Int(250)]).unwrap();
    txn.call(&bob, "deposit", vec![Value::Int(250)]).unwrap();
    txn.commit().unwrap();
    println!(
        "alice -> bob 250 committed: alice={}, bob={}",
        accounts[0].balance.load(Ordering::SeqCst),
        accounts[1].balance.load(Ordering::SeqCst)
    );

    // One aborted transfer: provisional effects rolled back.
    let txn = system.begin(client);
    txn.call(&alice, "withdraw", vec![Value::Int(100)]).unwrap();
    println!(
        "provisional withdraw applied (alice={})…",
        accounts[0].balance.load(Ordering::SeqCst)
    );
    txn.abort();
    println!(
        "…aborted and rolled back (alice={})",
        accounts[0].balance.load(Ordering::SeqCst)
    );

    // Concurrent random transfers: conflicts and deadlocks are broken by
    // the detector; committed money is conserved.
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let system = Arc::clone(&system);
            let refs = refs.clone();
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let client = Arc::clone(world.capsule(4));
            s.spawn(move || {
                for j in 0..10usize {
                    let from = (t + j) % refs.len();
                    let to = (t + j + 1 + j % 3) % refs.len();
                    if from == to {
                        continue;
                    }
                    let txn = system.begin(&client);
                    let src = client.bind(refs[from].clone());
                    let dst = client.bind(refs[to].clone());
                    let amount = 10 + (j as i64 * 7) % 50;
                    let result = (|| -> Result<bool, TxnError> {
                        let out = txn.call(&src, "withdraw", vec![Value::Int(amount)])?;
                        if !out.is_ok() {
                            return Ok(false);
                        }
                        txn.call(&dst, "deposit", vec![Value::Int(amount)])?;
                        Ok(true)
                    })();
                    match result {
                        Ok(true) => {
                            if txn.commit().is_ok() {
                                committed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(false) => {
                            txn.abort();
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    std::thread::sleep(Duration::from_millis(100));
    println!(
        "\nconcurrent phase: {} committed, {} aborted (conflicts/deadlocks)",
        committed.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed)
    );
    for a in &accounts {
        println!("  {:6} {}", a.name, a.balance.load(Ordering::SeqCst));
    }
    let t = total();
    println!("total = {t} (invariant: 4000)");
    assert_eq!(t, 4_000, "money was created or destroyed!");
}
