//! A multimedia video wall: stream interfaces, explicit binding, QoS
//! monitoring and lip-sync (§7.2).
//!
//! A producer capsule streams a synthetic video flow and an audio flow to
//! a consumer over the simulated network (the video path deliberately
//! lossy and jittery). The binding's control interface — an ordinary ADT —
//! is used to start the flows and read QoS; a `SyncBuffer` aligns the two
//! flows into presentation groups despite their different network
//! behaviour.
//!
//! Run with: `cargo run -p odp --example video_wall`

use odp::prelude::*;
use odp::streams::binding::{synthetic_source, BindingTemplate, TemplateFlow};
use odp::streams::endpoint::{channel_sink, stream_node};
use odp::streams::{FlowQos, FlowSpec, StreamBinding, StreamEndpoint, SyncBuffer};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let world = World::builder().capsules(2).build();
    let producer_node = world.capsule(0).node();
    let consumer_node = world.capsule(1).node();

    // Media takes its own protocol path beside REX (§5.4); make the video
    // leg imperfect: 5 ms ± 4 ms latency and 2% loss.
    world.net().set_link(
        stream_node(producer_node),
        stream_node(consumer_node),
        LinkConfig {
            latency: Duration::from_millis(5),
            jitter: Duration::from_millis(4),
            loss: 0.02,
        },
    );

    let producer = StreamEndpoint::new(world.transport(), producer_node).unwrap();
    let consumer = StreamEndpoint::new(world.transport(), consumer_node).unwrap();

    // Application taps feeding the lip-sync buffer.
    let (video_tx, video_rx) = crossbeam::channel::unbounded();
    let (audio_tx, audio_rx) = crossbeam::channel::unbounded();

    let template = BindingTemplate {
        flows: vec![
            TemplateFlow {
                spec: FlowSpec::new(
                    "video",
                    "video/synthetic",
                    1024,
                    FlowQos {
                        rate_fps: 100,
                        max_jitter: Duration::from_millis(15),
                        max_loss_per_mille: 50,
                    },
                ),
                source: synthetic_source(1024, 200),
                sink: Some(channel_sink(video_tx)),
            },
            TemplateFlow {
                spec: FlowSpec::new(
                    "audio",
                    "audio/synthetic",
                    128,
                    FlowQos {
                        rate_fps: 100,
                        max_jitter: Duration::from_millis(10),
                        max_loss_per_mille: 10,
                    },
                ),
                source: synthetic_source(128, 200),
                sink: Some(channel_sink(audio_tx)),
            },
        ],
    };
    let binding = StreamBinding::establish(template, &producer, &consumer, world.capsule(0));
    println!("explicit binding established: {:?}", binding.id());
    println!("control interface: {:?}", binding.control_ref().iface);

    // Drive the binding through its control ADT from the consumer side.
    let control = world.capsule(1).bind(binding.control_ref());
    control.interrogate("start", vec![]).unwrap();
    println!("flows started (video 100 fps over a lossy/jittery leg, audio 100 fps clean)\n");

    // Lip sync: release presentation groups aligned to within 25 ms.
    let sync = Arc::new(SyncBuffer::new(2, 25_000));
    let mut groups = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut video_done = false;
    let mut audio_done = false;
    while std::time::Instant::now() < deadline && !(video_done && audio_done) {
        while let Ok(f) = video_rx.try_recv() {
            if f.seq == 199 {
                video_done = true;
            }
            sync.offer(f);
        }
        while let Ok(f) = audio_rx.try_recv() {
            if f.seq == 199 {
                audio_done = true;
            }
            sync.offer(f);
        }
        while let Some(group) = sync.release() {
            groups += 1;
            if groups.is_multiple_of(50) {
                println!(
                    "  presented group {groups}: video ts={}µs audio ts={}µs (skew {}µs)",
                    group[0].timestamp_us,
                    group[1].timestamp_us,
                    group[0].timestamp_us.abs_diff(group[1].timestamp_us)
                );
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Read the QoS verdicts through the control interface.
    println!("\nQoS reports (consumer-side measurement vs declared contract):");
    for (i, name) in ["video", "audio"].iter().enumerate() {
        let out = control
            .interrogate("stats", vec![Value::Int(i as i64)])
            .unwrap();
        let r = out.result().unwrap();
        println!(
            "  {name:5} received={} lost={} jitter={}µs within_qos={}",
            r.field("received").and_then(Value::as_int).unwrap(),
            r.field("lost").and_then(Value::as_int).unwrap(),
            r.field("jitter_us").and_then(Value::as_int).unwrap(),
            r.field("within_qos").and_then(Value::as_bool).unwrap(),
        );
    }
    println!("presentation groups released in sync: {groups}");
    binding.stop();
}
