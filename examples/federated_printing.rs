//! Federated printing: the paper's motivating scenario of interworking
//! across organizational boundaries.
//!
//! Two organizations — `acme` and `globex` — each run their own trader and
//! their own administrative domain. Acme offers a print service, guarded
//! by a declarative security policy. A Globex client discovers the printer
//! through its own trader (one federation hop, context-relative path),
//! then invokes it across the domain boundary: the gateway intercepts,
//! admits, accounts and forwards; the security guard authenticates the
//! caller by shared secret.
//!
//! Run with: `cargo run -p odp --example federated_printing`

use odp::federation::{AdmissionPolicy, BoundaryLayer, DomainMap, Gateway};
use odp::prelude::*;
use odp::security::secret::establish;
use odp::security::{AuthLayer, Guard, SecretStore, SecurityPolicy};
use odp::trading::trader::template;
use odp::trading::{PropertyConstraint, Trader};
use odp::types::DomainId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ACME: DomainId = DomainId(1);
const GLOBEX: DomainId = DomainId(2);

fn printer_type() -> InterfaceType {
    InterfaceTypeBuilder::new()
        .interrogation(
            "print",
            vec![TypeSpec::Str],
            vec![OutcomeSig::ok(vec![TypeSpec::Int])],
        )
        .interrogation("status", vec![], vec![OutcomeSig::ok(vec![TypeSpec::Str])])
        .build()
}

fn main() {
    // Topology: capsule 0 = acme printer host, 1 = acme gateway + trader,
    // 2 = globex trader, 3 = globex client.
    let world = World::builder().capsules(4).build();
    let map = DomainMap::new();
    map.declare(ACME, "acme");
    map.declare(GLOBEX, "globex");
    map.assign(world.capsule(0).node(), ACME);
    map.assign(world.capsule(1).node(), ACME);
    map.assign(world.capsule(2).node(), GLOBEX);
    map.assign(world.capsule(3).node(), GLOBEX);

    // --- Acme: a guarded printer ---------------------------------------
    let printer_secrets = Arc::new(SecretStore::new("acme-printer"));
    let guard = Guard::generate(
        Arc::clone(&printer_secrets),
        SecurityPolicy::deny_all().allow("globex-client", &["print", "status"]),
    );
    let pages = AtomicU64::new(0);
    let printer = FnServant::new(printer_type(), move |op, args, _ctx| match op {
        "print" => {
            let doc = args[0].as_str().unwrap_or("");
            let n = pages.fetch_add(1, Ordering::SeqCst) + 1;
            println!("  [printer] job {n}: {doc:?}");
            Outcome::ok(vec![Value::Int(n as i64)])
        }
        "status" => Outcome::ok(vec![Value::str("idle; toner 73%")]),
        _ => Outcome::fail("no such op"),
    });
    let printer_ref = world.capsule(0).export_with(
        Arc::new(printer) as Arc<dyn Servant>,
        ExportConfig {
            layers: vec![guard.clone() as Arc<dyn odp::core::ServerLayer>],
            ..ExportConfig::default()
        },
    );

    // Acme's gateway: admit globex, account every crossing.
    let acme_gateway = Gateway::new(
        Arc::clone(&map),
        ACME,
        world.capsule(1),
        AdmissionPolicy::with_rule(Arc::new(|domain, _op| domain == "globex")),
    );
    // Keep a second handle to the ledger for reporting.
    let acme_gateway = Arc::new(acme_gateway);
    let gw_for_report = Arc::clone(&acme_gateway);
    let gw_ref = world
        .capsule(1)
        .export(Arc::clone(&acme_gateway) as Arc<dyn Servant>);
    map.set_gateway(ACME, gw_ref);

    // Acme's trader offers the printer.
    let acme_trader = Arc::new(Trader::new());
    acme_trader.attach_capsule(world.capsule(1));
    acme_trader.export_offer(
        printer_ref,
        [
            ("ppm".to_owned(), Value::Int(24)),
            ("colour".to_owned(), Value::Bool(true)),
        ]
        .into(),
    );
    let acme_trader_ref = world
        .capsule(1)
        .export(Arc::clone(&acme_trader) as Arc<dyn Servant>);

    // --- Globex: a linked trader and a client ---------------------------
    let globex_trader = Arc::new(Trader::new());
    globex_trader.attach_capsule(world.capsule(2));
    globex_trader.link("acme", acme_trader_ref);
    let globex_trader_ref = world
        .capsule(2)
        .export(Arc::clone(&globex_trader) as Arc<dyn Servant>);

    // The client's credentials: a secret shared with acme's printer.
    let client_secrets = Arc::new(SecretStore::new("globex-client"));
    establish(&client_secrets, &printer_secrets, 0xF00D);

    // Discover the printer through the federated trader graph:
    // path "acme" from globex's trader (context-relative naming).
    let trader_binding = world.capsule(3).bind(globex_trader_ref);
    let out = trader_binding
        .interrogate(
            "import_path",
            vec![
                Value::str("acme"),
                template(printer_type()),
                PropertyConstraint::encode_all(&[PropertyConstraint::AtLeast("ppm".into(), 10)]),
                Value::Int(1),
                Value::Int(8),
            ],
        )
        .unwrap();
    assert_eq!(out.termination, "ok", "trading failed: {out:?}");
    let found = out.result().unwrap().as_seq().unwrap()[0]
        .as_interface()
        .unwrap()
        .clone();
    println!("imported printer {:?} via federated trading", found.iface);

    // Bind across the boundary: boundary interception + authentication
    // selected declaratively, per binding.
    let policy = TransparencyPolicy::default()
        .with_layer(AuthLayer::new(Arc::clone(&client_secrets), "acme-printer"))
        .with_layer(BoundaryLayer::new(Arc::clone(&map), GLOBEX));
    let printer = world.capsule(3).bind_with(found.clone(), policy);

    let out = printer.interrogate("status", vec![]).unwrap();
    println!(
        "printer status: {}",
        out.result().unwrap().as_str().unwrap()
    );
    for doc in ["q3-report.ps", "invoice-0042.ps", "odp-challenge.ps"] {
        let out = printer.interrogate("print", vec![Value::str(doc)]).unwrap();
        println!("printed {doc} as job {}", out.int().unwrap());
    }

    // An unauthenticated caller holding the same reference is refused.
    let bare = world.capsule(3).bind_with(
        found.clone(),
        TransparencyPolicy::default().with_layer(BoundaryLayer::new(Arc::clone(&map), GLOBEX)),
    );
    let err = bare
        .interrogate("print", vec![Value::str("sneaky.ps")])
        .unwrap_err();
    println!("unauthenticated print refused: {err}");

    // The boundary accounted every admitted crossing.
    println!("\nacme gateway ledger:");
    for (domain, iface, line) in gw_for_report.accounting.report() {
        println!(
            "  from {domain} to {iface}: {} interactions, {} bytes",
            line.interactions, line.bytes
        );
    }
    println!(
        "guard: {} admitted, {} denied",
        guard.admitted.load(Ordering::Relaxed),
        guard.denied.load(Ordering::Relaxed)
    );
}
